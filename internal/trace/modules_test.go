package trace

import (
	"bytes"
	"testing"

	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/workload"
)

// modProg builds a program whose main churns a lazy module.
func modProg(t *testing.T) (*prog.Program, prog.ModuleID) {
	t.Helper()
	b := prog.NewBuilder()
	mod := b.Module("plugin.so", true)
	mainF := b.Func("main")
	inMod := b.FuncIn("plugfn", mod)
	gate := b.CallSite(mainF, inMod)
	b.Leaf(inMod, 1)
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 4; i++ {
			x.LoadModule(mod)
			x.Call(gate, prog.NoFunc)
			x.UnloadModule(mod)
		}
	})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, mod
}

// TestTraceRecordsModuleEvents checks that the recorder captures module
// load/unload transitions in stream order and that a replay reproduces
// the exact lifecycle, counters included.
func TestTraceRecordsModuleEvents(t *testing.T) {
	p, _ := modProg(t)
	tr := record(t, p, machine.Config{})

	loads, unloads := 0, 0
	for _, s := range tr.Streams {
		for _, ev := range s {
			switch ev.Kind {
			case EvModLoad:
				loads++
			case EvModUnload:
				unloads++
			}
		}
	}
	if loads != 4 || unloads != 4 {
		t.Fatalf("trace has %d loads, %d unloads, want 4/4", loads, unloads)
	}

	rp, err := ReplayProgram(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := machine.New(rp, machine.NullScheme{}, machine.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.C.ModuleLoads != 4 || rs.C.ModuleUnloads != 4 {
		t.Errorf("replay performed %d loads, %d unloads, want 4/4", rs.C.ModuleLoads, rs.C.ModuleUnloads)
	}
}

// TestTraceV2RoundTrip checks that a trace with thread idents and
// module events survives Write/Read bit-exactly.
func TestTraceV2RoundTrip(t *testing.T) {
	p, _ := modProg(t)
	tr := record(t, p, machine.Config{})
	if len(tr.Idents) != len(tr.Streams) {
		t.Fatalf("recorder filled %d idents for %d streams", len(tr.Idents), len(tr.Streams))
	}

	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Idents) != len(tr.Idents) {
		t.Fatalf("read back %d idents, want %d", len(got.Idents), len(tr.Idents))
	}
	for i := range tr.Idents {
		if got.Idents[i] != tr.Idents[i] {
			t.Errorf("ident[%d] = %#x, want %#x", i, got.Idents[i], tr.Idents[i])
		}
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Errorf("read back %d events, want %d", got.NumEvents(), tr.NumEvents())
	}
	// Second write must be byte-identical (canonical encoding).
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a read trace changed its bytes")
	}
}

// TestTraceLegacyV1RoundTrip checks that ident-less traces still write
// the legacy format and read back unchanged, so committed v1 corpora
// keep parsing.
func TestTraceLegacyV1RoundTrip(t *testing.T) {
	p, _ := modProg(t)
	tr := record(t, p, machine.Config{})
	tr.Idents = nil // simulate a legacy trace

	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Idents) != 0 {
		t.Fatalf("legacy trace read back with %d idents", len(got.Idents))
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Errorf("read back %d events, want %d", got.NumEvents(), tr.NumEvents())
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("legacy round-trip changed bytes")
	}
}

// TestReplayRejectsBadModuleEvents checks ReplayProgram's validation of
// fuzzed module events: out-of-range ids and unloads of eager modules.
func TestReplayRejectsBadModuleEvents(t *testing.T) {
	p, _ := modProg(t)
	tr := record(t, p, machine.Config{})

	bad := &Trace{Streams: [][]Event{{{Kind: EvModLoad, Target: 99}}}, Entries: tr.Entries[:1]}
	if _, err := ReplayProgram(p, bad); err == nil {
		t.Error("out-of-range module id accepted")
	}
	// Module 0 is the eager main module: unloading it must be rejected.
	bad = &Trace{Streams: [][]Event{{{Kind: EvModUnload, Target: 0}}}, Entries: tr.Entries[:1]}
	if _, err := ReplayProgram(p, bad); err == nil {
		t.Error("unload of eager module accepted")
	}
}

// TestReplayMatchesThreadsByIdent runs a spawn-churn workload whose
// numeric thread ids are scheduling-dependent and checks the replay
// still pairs every live thread with its recorded stream (replayed
// call count equals recorded call count).
func TestReplayMatchesThreadsByIdent(t *testing.T) {
	pr := workload.RandomProfile(11, 40, 30, 20, 2)
	pr.Name = "ident-match"
	pr.Threads = 3
	pr.SpawnChurn = 16
	pr.SpawnRate = 0.1
	w := workload.MustBuild(pr)

	tr := record(t, w.P, machine.Config{Seed: pr.Seed + 1})
	if len(tr.Idents) != len(tr.Streams) {
		t.Fatalf("%d idents for %d streams", len(tr.Idents), len(tr.Streams))
	}
	seen := make(map[uint64]bool, len(tr.Idents))
	for _, id := range tr.Idents {
		if seen[id] {
			t.Fatalf("duplicate ident %#x in trace", id)
		}
		seen[id] = true
	}

	rp, err := ReplayProgram(w.P, tr)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := machine.New(rp, machine.NullScheme{}, machine.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var wantCalls int64
	for _, s := range tr.Streams {
		for _, ev := range s {
			if ev.Kind == EvCall {
				wantCalls++
			}
		}
	}
	if rs.C.Calls != wantCalls {
		t.Errorf("replayed %d calls, recorded %d", rs.C.Calls, wantCalls)
	}
	if rs.Threads != len(tr.Streams) {
		t.Errorf("replay ran %d threads, trace has %d streams", rs.Threads, len(tr.Streams))
	}
}
