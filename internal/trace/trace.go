// Package trace records the exact call/return/spawn event stream of a
// machine run and replays it later — against a different encoding
// scheme, a different configuration, or offline analysis. Replay makes
// cross-scheme comparisons exact: both schemes observe the identical
// event sequence, eliminating even the residual per-run divergence of
// seeded workload bodies (thread interleaving aside — per-thread
// streams are replayed faithfully).
//
// A Trace is also a compact serialization format (binary varint) so
// recorded runs can be stored and replayed elsewhere.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// EventKind tags trace events.
type EventKind uint8

// Event kinds.
const (
	// EvCall is a call through a site to a target (tail calls carry the
	// site's tail kind implicitly).
	EvCall EventKind = iota
	// EvReturn closes the most recent open call.
	EvReturn
	// EvWork is application work between calls.
	EvWork
	// EvSpawn starts a new thread at a function.
	EvSpawn
	// EvModLoad loads a module (dlopen). Target carries the module id.
	EvModLoad
	// EvModUnload unloads a module (dlclose). Target carries the module
	// id.
	EvModUnload
)

// Event is one recorded action of one thread.
type Event struct {
	Kind EventKind
	Site prog.SiteID // EvCall
	// Target is the resolved callee (EvCall), the spawned thread's entry
	// (EvSpawn), or the module id (EvModLoad/EvModUnload).
	Target prog.FuncID
	Work   int64 // EvWork
}

// Trace is one run's event streams, one per thread, plus each thread's
// entry function.
type Trace struct {
	Entries []prog.FuncID // per thread: entry function
	Streams [][]Event     // per thread: events in execution order

	// Idents holds each recorded thread's spawn-tree identity
	// (machine.Thread.Ident), aligned with Streams. Replay matches a
	// live thread to its stream by ident, which is stable under
	// concurrent spawning where numeric thread ids are not. Empty for
	// traces recorded before idents existed; replay then falls back to
	// id order.
	Idents []uint64

	// SyntheticWork, when > 0, makes replays charge this much
	// application work before every replayed call. The recorder cannot
	// see bodies' Work calls (they bypass the call sites it
	// instruments), so replays would otherwise consist of bare
	// dispatches and overstate relative instrumentation cost.
	SyntheticWork int64
}

// NumThreads returns the number of recorded threads.
func (tr *Trace) NumThreads() int { return len(tr.Streams) }

// NumEvents returns the total event count.
func (tr *Trace) NumEvents() int {
	n := 0
	for _, s := range tr.Streams {
		n += len(s)
	}
	return n
}

// Recorder is a machine.Scheme that captures the event stream while the
// underlying scheme of interest can run separately later. It charges no
// model cost (recording is a harness activity).
type Recorder struct {
	mu      sync.Mutex
	streams map[int]*recTLS
	order   []int
}

type recTLS struct {
	entry  prog.FuncID
	ident  uint64
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{streams: make(map[int]*recTLS)}
}

// Name implements machine.Scheme.
func (*Recorder) Name() string { return "trace-recorder" }

// Install implements machine.Scheme.
func (r *Recorder) Install(m *machine.Machine) {
	st := &recStub{r: r}
	for i := 0; i < m.Program().NumSites(); i++ {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (r *Recorder) ThreadStart(t, parent *machine.Thread) {
	tls := &recTLS{entry: t.Entry(), ident: t.Ident()}
	t.State = tls
	r.mu.Lock()
	r.streams[t.ID()] = tls
	r.order = append(r.order, t.ID())
	r.mu.Unlock()
	if parent != nil {
		ptls := parent.State.(*recTLS)
		ptls.events = append(ptls.events, Event{Kind: EvSpawn, Target: t.Entry()})
	}
}

// ThreadExit implements machine.Scheme.
func (*Recorder) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme.
func (*Recorder) Capture(t *machine.Thread) any { return nil }

// OnModuleLoad implements machine.ModuleObserver: module lifecycle is
// part of the event stream, so replays churn modules exactly as the
// recorded run did.
func (r *Recorder) OnModuleLoad(t *machine.Thread, id prog.ModuleID) {
	tls := t.State.(*recTLS)
	tls.events = append(tls.events, Event{Kind: EvModLoad, Target: prog.FuncID(id)})
}

// OnModuleUnload implements machine.ModuleObserver.
func (r *Recorder) OnModuleUnload(t *machine.Thread, id prog.ModuleID) {
	tls := t.State.(*recTLS)
	tls.events = append(tls.events, Event{Kind: EvModUnload, Target: prog.FuncID(id)})
}

// Trace returns the recorded trace. Call after the run completes.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := &Trace{}
	for tid := 0; tid < len(r.order); tid++ {
		tls := r.streams[tid]
		tr.Entries = append(tr.Entries, tls.entry)
		tr.Idents = append(tr.Idents, tls.ident)
		tr.Streams = append(tr.Streams, tls.events)
	}
	return tr
}

type recStub struct{ r *Recorder }

func (rs *recStub) Prologue(t *machine.Thread, s *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	tls := t.State.(*recTLS)
	tls.events = append(tls.events, Event{Kind: EvCall, Site: s.ID, Target: target})
	return machine.Cookie{}, rs
}

func (rs *recStub) Epilogue(t *machine.Thread, s *prog.Site, target prog.FuncID, c machine.Cookie) {
	tls := t.State.(*recTLS)
	tls.events = append(tls.events, Event{Kind: EvReturn})
}

// Note: tail calls never produce EvReturn from their own site — exactly
// like the hardware. The replayer reconstructs nesting from the site's
// kind, as the original execution did.

// ReplayProgram builds a program whose bodies replay the trace exactly:
// same sites, same targets, same order, per thread. The returned
// program shares the original's functions/sites/modules, with bodies
// swapped for replay drivers; the original program is not modified.
//
// Bodies' Work calls happen outside the recorder's view, so replays
// reproduce the call structure but not the application work; set
// Trace.SyntheticWork to re-add a per-call work charge when comparing
// overheads.
func ReplayProgram(p *prog.Program, tr *Trace) (*prog.Program, error) {
	if len(tr.Streams) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if len(tr.Entries) != len(tr.Streams) {
		return nil, fmt.Errorf("trace: %d entries for %d streams", len(tr.Entries), len(tr.Streams))
	}
	// Traces may come from serialized input: validate every reference
	// before execution rather than panicking mid-run.
	for i, entry := range tr.Entries {
		if int(entry) < 0 || int(entry) >= len(p.Funcs) {
			return nil, fmt.Errorf("trace: thread %d entry f%d out of range", i, entry)
		}
	}
	for ti, s := range tr.Streams {
		depth := 0
		for j, ev := range s {
			switch ev.Kind {
			case EvCall:
				if int(ev.Site) < 0 || int(ev.Site) >= len(p.Sites) {
					return nil, fmt.Errorf("trace: thread %d event %d: site %d out of range", ti, j, ev.Site)
				}
				if int(ev.Target) < 0 || int(ev.Target) >= len(p.Funcs) {
					return nil, fmt.Errorf("trace: thread %d event %d: target f%d out of range", ti, j, ev.Target)
				}
				if !p.Sites[ev.Site].Kind.IsTail() {
					depth++
				}
			case EvReturn:
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("trace: thread %d event %d: unmatched return", ti, j)
				}
			case EvSpawn:
				if int(ev.Target) < 0 || int(ev.Target) >= len(p.Funcs) {
					return nil, fmt.Errorf("trace: thread %d event %d: spawn target f%d out of range", ti, j, ev.Target)
				}
			case EvModLoad, EvModUnload:
				if int(ev.Target) < 0 || int(ev.Target) >= len(p.Modules) {
					return nil, fmt.Errorf("trace: thread %d event %d: module %d out of range", ti, j, ev.Target)
				}
				if ev.Kind == EvModUnload && !p.Modules[ev.Target].Lazy {
					return nil, fmt.Errorf("trace: thread %d event %d: unload of eager module %d", ti, j, ev.Target)
				}
			case EvWork:
				if ev.Work < 0 {
					return nil, fmt.Errorf("trace: thread %d event %d: negative work", ti, j)
				}
			default:
				return nil, fmt.Errorf("trace: thread %d event %d: bad kind %d", ti, j, ev.Kind)
			}
		}
	}
	// Deep-copy the program skeleton so bodies can be replaced safely.
	cp := &prog.Program{
		Entry:       tr.Entries[0],
		ThreadRoots: append([]prog.FuncID(nil), p.ThreadRoots...),
		PLT:         p.PLT,
		Sites:       p.Sites,
		Modules:     p.Modules,
	}
	cp.Funcs = make([]*prog.Function, len(p.Funcs))
	rp := &replayer{p: cp, tr: tr, byIdent: identIndex(tr)}
	for i, f := range p.Funcs {
		nf := *f
		nf.Body = rp.body()
		cp.Funcs[i] = &nf
	}
	return cp, nil
}

// identIndex maps each recorded thread ident to its stream index, or
// nil when the trace carries no (usable) idents: pre-ident traces, and
// corrupted traces where two streams claim the same ident.
func identIndex(tr *Trace) map[uint64]int {
	if len(tr.Idents) != len(tr.Streams) {
		return nil
	}
	m := make(map[uint64]int, len(tr.Idents))
	for i, id := range tr.Idents {
		if _, dup := m[id]; dup {
			return nil
		}
		m[id] = i
	}
	return m
}

// replayer drives bodies from the recorded per-thread cursors.
type replayer struct {
	p       *prog.Program
	tr      *Trace
	byIdent map[uint64]int

	mu      sync.Mutex
	cursors map[int]*cursor
}

type cursor struct {
	events []Event
	pos    int
}

func (rp *replayer) cursorFor(t *machine.Thread) *cursor {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.cursors == nil {
		rp.cursors = make(map[int]*cursor)
	}
	c, ok := rp.cursors[t.ID()]
	if !ok {
		// Match the live thread to its recorded stream by spawn-tree
		// ident: replayed spawns recreate the recording's spawn tree, so
		// idents agree even when the OS schedules thread starts in a
		// different order than the recording run did.
		idx, ok := -1, false
		if rp.byIdent != nil {
			if i, hit := rp.byIdent[t.Ident()]; hit {
				idx, ok = i, true
			}
		}
		if !ok {
			// Pre-ident traces: ids were assigned in spawn order,
			// matching the recorded stream order for deterministic
			// workloads.
			idx = t.ID()
			if idx >= len(rp.tr.Streams) {
				idx = len(rp.tr.Streams) - 1
			}
		}
		c = &cursor{events: rp.tr.Streams[idx]}
		rp.cursors[t.ID()] = c
	}
	return c
}

// body returns the replay driver: each invocation consumes its events
// until the matching return.
func (rp *replayer) body() prog.Body {
	return func(x prog.Exec) {
		th := x.(*machine.Thread)
		cur := rp.cursorFor(th)
		for cur.pos < len(cur.events) {
			ev := cur.events[cur.pos]
			switch ev.Kind {
			case EvReturn:
				cur.pos++
				return
			case EvSpawn:
				cur.pos++
				x.Spawn(ev.Target)
			case EvModLoad:
				cur.pos++
				x.LoadModule(prog.ModuleID(ev.Target))
			case EvModUnload:
				cur.pos++
				// Recorded unloads are always legal to replay; this guard
				// only matters for hand-built or fuzzed traces, where an
				// unload under the thread's own frames would otherwise be
				// a machine panic.
				if !th.FrameInModule(prog.ModuleID(ev.Target)) {
					x.UnloadModule(prog.ModuleID(ev.Target))
				}
			case EvWork:
				cur.pos++
				x.Work(ev.Work)
			case EvCall:
				cur.pos++
				if rp.tr.SyntheticWork > 0 {
					x.Work(rp.tr.SyntheticWork)
				}
				site := rp.p.Site(ev.Site)
				if site.Kind.IsTail() {
					x.TailCall(ev.Site, ev.Target)
					// Tail calls recorded no EvReturn; the callee's
					// events ran inside TailCall, and control now
					// returns past this body.
					return
				}
				x.Call(ev.Site, ev.Target)
			default:
				panic(fmt.Sprintf("trace: bad event kind %d", ev.Kind))
			}
		}
	}
}

// maxThreads bounds deserialized thread counts; the first varint of the
// versioned format is deliberately above it so version tags can never be
// mistaken for a legacy thread count.
const maxThreads = 1 << 20

// formatV2 tags the ident-carrying serialization format. Older readers
// reject it cleanly as an "implausible thread count".
const formatV2 = maxThreads + 2

// Write serializes the trace (varint binary). Traces carrying thread
// idents use the v2 format; ident-less traces keep the legacy layout so
// a Read→Write round trip is byte-identical.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	put := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	v2 := len(tr.Idents) == len(tr.Streams) && len(tr.Streams) > 0
	if v2 {
		put(formatV2)
	}
	put(uint64(len(tr.Streams)))
	put(uint64(tr.SyntheticWork))
	for i, s := range tr.Streams {
		put(uint64(tr.Entries[i]))
		if v2 {
			put(tr.Idents[i])
		}
		put(uint64(len(s)))
		for _, ev := range s {
			put(uint64(ev.Kind))
			switch ev.Kind {
			case EvCall:
				put(uint64(ev.Site))
				put(uint64(ev.Target))
			case EvSpawn, EvModLoad, EvModUnload:
				put(uint64(ev.Target))
			case EvWork:
				put(uint64(ev.Work))
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write, either format.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	nThreads, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	v2 := false
	if nThreads > maxThreads {
		if nThreads != formatV2 {
			return nil, fmt.Errorf("trace: implausible thread count %d", nThreads)
		}
		v2 = true
		nThreads, err = get()
		if err != nil {
			return nil, fmt.Errorf("trace: reading thread count: %w", err)
		}
		if nThreads > maxThreads {
			return nil, fmt.Errorf("trace: implausible thread count %d", nThreads)
		}
	}
	synth, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: reading synthetic work: %w", err)
	}
	tr := &Trace{SyntheticWork: int64(synth)}
	for i := uint64(0); i < nThreads; i++ {
		entry, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d entry: %w", i, err)
		}
		if v2 {
			ident, err := get()
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d ident: %w", i, err)
			}
			tr.Idents = append(tr.Idents, ident)
		}
		n, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d length: %w", i, err)
		}
		if n > 1<<30 {
			return nil, fmt.Errorf("trace: implausible stream length %d", n)
		}
		events := make([]Event, 0, n)
		for j := uint64(0); j < n; j++ {
			kind, err := get()
			if err != nil {
				return nil, fmt.Errorf("trace: event %d/%d: %w", i, j, err)
			}
			ev := Event{Kind: EventKind(kind)}
			switch ev.Kind {
			case EvCall:
				site, err := get()
				if err != nil {
					return nil, err
				}
				target, err := get()
				if err != nil {
					return nil, err
				}
				ev.Site, ev.Target = prog.SiteID(site), prog.FuncID(target)
			case EvSpawn, EvModLoad, EvModUnload:
				target, err := get()
				if err != nil {
					return nil, err
				}
				ev.Target = prog.FuncID(target)
			case EvWork:
				w, err := get()
				if err != nil {
					return nil, err
				}
				ev.Work = int64(w)
			case EvReturn:
			default:
				return nil, fmt.Errorf("trace: bad event kind %d", kind)
			}
			events = append(events, ev)
		}
		tr.Entries = append(tr.Entries, prog.FuncID(entry))
		tr.Streams = append(tr.Streams, events)
	}
	return tr, nil
}
