// Package buildinfo reports the module version and VCS revision baked
// into the binary by the Go toolchain, so every CLI can answer
// -version and dacced can expose what build is serving on /v1/stats —
// without any of them linking each other.
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"
)

// Info identifies a build.
type Info struct {
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash, if the build had one.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time, if known.
	Time string `json:"time,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the binary's embedded build information. Binaries built
// without module support (rare: test binaries under odd configurations)
// report "unknown".
func Get() Info {
	info := Info{Version: "unknown", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the info on one line: version, short revision, dirty
// marker.
func (i Info) String() string {
	s := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	return s + " (" + i.GoVersion + ")"
}

// Print writes the standard -version output for a tool.
func Print(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s\n", tool, Get())
}
