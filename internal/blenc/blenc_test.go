package blenc

import (
	"fmt"
	"testing"

	"dacce/internal/graph"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

// fig1Graph builds the paper's Fig. 1 diamond with all edges invoked.
func fig1Graph(t *testing.T) (*progtest.Fixture, *graph.Graph) {
	t.Helper()
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	g := graph.New(p)
	for _, s := range []string{"AB", "AC", "BD", "CD", "DE", "DF"} {
		g.AddEdge(fx.S(s), p.Site(fx.S(s)).Target)
	}
	return fx, g
}

func TestFig1Numbering(t *testing.T) {
	fx, g := fig1Graph(t)
	// Make the B-side hotter so BD gets code 0 and only CD needs
	// instrumentation, as in the paper's figure.
	g.Edge(fx.S("BD"), fx.F("D")).Freq = 10
	g.Edge(fx.S("CD"), fx.F("D")).Freq = 1
	a := Encode(g, Options{})
	wantNumCC := map[string]uint64{"A": 1, "B": 1, "C": 1, "D": 2, "E": 2, "F": 2}
	for name, want := range wantNumCC {
		if got := a.NumCC[fx.F(name)]; got != want {
			t.Errorf("numCC(%s) = %d, want %d", name, got, want)
		}
	}
	if a.MaxID != 1 {
		t.Errorf("MaxID = %d, want 1", a.MaxID)
	}
	checkCode := func(site string, target string, want uint64) {
		t.Helper()
		c, ok := a.CodeOf(g.Edge(fx.S(site), fx.F(target)))
		if !ok || !c.Encoded {
			t.Errorf("edge %s unexpectedly unencoded", site)
			return
		}
		if c.Value != want {
			t.Errorf("code(%s) = %d, want %d", site, c.Value, want)
		}
	}
	checkCode("BD", "D", 0)
	checkCode("CD", "D", 1) // the single "id += 1" of Fig. 1
	checkCode("AB", "B", 0)
	checkCode("AC", "C", 0)
	checkCode("DE", "E", 0)
	checkCode("DF", "F", 0)
	if a.Overflowed {
		t.Error("tiny graph reported overflow")
	}
	if a.EncodedEdges != 6 {
		t.Errorf("EncodedEdges = %d, want 6", a.EncodedEdges)
	}
}

func TestHotFirstOrdering(t *testing.T) {
	fx, g := fig1Graph(t)
	// Flip the heat: CD hotter than BD — CD must now get code 0.
	g.Edge(fx.S("BD"), fx.F("D")).Freq = 1
	g.Edge(fx.S("CD"), fx.F("D")).Freq = 10
	a := Encode(g, Options{})
	c, _ := a.CodeOf(g.Edge(fx.S("CD"), fx.F("D")))
	if c.Value != 0 {
		t.Errorf("hottest edge CD got code %d, want 0", c.Value)
	}
	c, _ = a.CodeOf(g.Edge(fx.S("BD"), fx.F("D")))
	if c.Value != 1 {
		t.Errorf("colder edge BD got code %d, want 1", c.Value)
	}
}

func TestBackEdgesNeverEncoded(t *testing.T) {
	fx, b := progtest.Fig5()
	p := b.MustBuild()
	g := graph.New(p)
	for _, s := range []string{"AC", "CD", "AD", "DA"} {
		g.AddEdge(fx.S(s), p.Site(fx.S(s)).Target)
	}
	a := Encode(g, Options{})
	c, ok := a.CodeOf(g.Edge(fx.S("DA"), fx.F("A")))
	if !ok {
		t.Fatal("back edge missing from snapshot")
	}
	if c.Encoded {
		t.Error("back edge D→A was encoded")
	}
	if !c.Back {
		t.Error("back edge not flagged Back in the dictionary")
	}
	// The rest of the graph is acyclic and must be encoded: paths ACD
	// and AD give D two contexts.
	if a.NumCC[fx.F("D")] != 2 {
		t.Errorf("numCC(D) = %d, want 2", a.NumCC[fx.F("D")])
	}
}

// diamondChain builds k stacked diamonds; the number of paths doubles
// per layer, so numCC(last) = 2^k.
func diamondChain(t *testing.T, k int) *graph.Graph {
	t.Helper()
	b := prog.NewBuilder()
	prev := b.Func("n0")
	b.Entry(prev)
	type edge struct {
		s prog.SiteID
		t prog.FuncID
	}
	var edges []edge
	for i := 0; i < k; i++ {
		l := b.Func(fmt.Sprintf("l%d", i))
		r := b.Func(fmt.Sprintf("r%d", i))
		next := b.Func(fmt.Sprintf("j%d", i))
		edges = append(edges,
			edge{b.CallSite(prev, l), l},
			edge{b.CallSite(prev, r), r},
			edge{b.CallSite(l, next), next},
			edge{b.CallSite(r, next), next},
		)
		prev = next
	}
	p := b.MustBuild()
	g := graph.New(p)
	for _, e := range edges {
		ge, _ := g.AddEdge(e.s, e.t)
		ge.Freq = 1 // every edge invoked, so budgeting must drop hot... cold ties
	}
	return g
}

func TestExponentialNumCC(t *testing.T) {
	g := diamondChain(t, 10)
	a := Encode(g, Options{})
	if a.MaxID != (1<<10)-1 {
		t.Errorf("MaxID = %d, want %d", a.MaxID, (1<<10)-1)
	}
}

func TestOverflowBudgeting(t *testing.T) {
	g := diamondChain(t, 70) // 2^70 paths: saturates uint64
	a := Encode(g, Options{})
	if !a.Overflowed {
		t.Fatal("2^70-path graph did not report overflow")
	}
	if a.MaxID > DefaultBudget {
		t.Errorf("budgeted MaxID %d exceeds budget %d", a.MaxID, DefaultBudget)
	}
	if a.Excluded == 0 {
		t.Error("overflow handled without excluding any edge")
	}
	// Every node still has at least one context.
	for fn, n := range a.NumCC {
		if n == 0 {
			t.Errorf("numCC(f%d) = 0", fn)
		}
	}
}

func TestSmallBudget(t *testing.T) {
	g := diamondChain(t, 10)
	a := Encode(g, Options{Budget: 100})
	if !a.Overflowed {
		t.Fatal("encoding above budget not reported as overflow")
	}
	if a.MaxID > 100 {
		t.Errorf("MaxID %d exceeds explicit budget 100", a.MaxID)
	}
	if a.UnrestrictedMaxID != (1<<10)-1 {
		t.Errorf("UnrestrictedMaxID = %d, want %d", a.UnrestrictedMaxID, (1<<10)-1)
	}
}

func TestNeverInvokedEdgesDroppedFirst(t *testing.T) {
	g := diamondChain(t, 10)
	// Mark half the edges never-invoked: budget pressure must drop
	// those, keeping all invoked edges encoded.
	for i, e := range g.Edges {
		if i%4 == 3 { // one diamond side per layer
			e.Freq = 0
		} else {
			e.Freq = 100
		}
	}
	a := Encode(g, Options{Budget: 40})
	if !a.Overflowed {
		t.Fatal("expected overflow against budget 40")
	}
	for _, e := range g.Edges {
		c, _ := a.CodeOf(e)
		if e.Freq > 0 && !c.Encoded {
			t.Errorf("invoked edge %v dropped while never-invoked edges existed", e)
		}
	}
}

func TestCodesPartitionRange(t *testing.T) {
	// Property: for every node, the encoded in-edge ranges
	// [En(e), En(e)+numCC(p)) are disjoint and cover [0, numCC(n))
	// exactly (unless the node is a sub-path head with extra slack).
	fx, g := fig1Graph(t)
	_ = fx
	a := Encode(g, Options{})
	for _, n := range g.NodeSeq {
		covered := uint64(0)
		for _, e := range n.In {
			c, ok := a.CodeOf(e)
			if !ok || !c.Encoded {
				continue
			}
			if c.Value != covered {
				t.Errorf("node %s: edge %v code %d, want prefix sum %d", n.Name(), e, c.Value, covered)
			}
			covered += a.NumCC[e.Caller]
		}
		if covered != 0 && covered != a.NumCC[n.Fn] {
			t.Errorf("node %s: codes cover %d of %d contexts", n.Name(), covered, a.NumCC[n.Fn])
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	enc := func() *Assignment {
		_, g := fig1Graph(t)
		return Encode(g, Options{})
	}
	a, b := enc(), enc()
	if a.MaxID != b.MaxID || a.EncodedEdges != b.EncodedEdges {
		t.Fatal("Encode not deterministic")
	}
	for k, v := range a.Codes {
		if b.Codes[k] != v {
			t.Fatalf("code for %v differs across runs: %v vs %v", k, v, b.Codes[k])
		}
	}
}

func TestNoHotOrderKeepsInsertionOrder(t *testing.T) {
	fx, g := fig1Graph(t)
	// CD is hotter, but with NoHotOrder the first-inserted in-edge of D
	// (BD) keeps code 0.
	g.Edge(fx.S("BD"), fx.F("D")).Freq = 1
	g.Edge(fx.S("CD"), fx.F("D")).Freq = 100
	a := Encode(g, Options{NoHotOrder: true})
	c, _ := a.CodeOf(g.Edge(fx.S("BD"), fx.F("D")))
	if c.Value != 0 {
		t.Errorf("first in-edge BD got code %d, want 0 under NoHotOrder", c.Value)
	}
	c, _ = a.CodeOf(g.Edge(fx.S("CD"), fx.F("D")))
	if c.Value != 1 {
		t.Errorf("CD got code %d, want 1 under NoHotOrder", c.Value)
	}
}
