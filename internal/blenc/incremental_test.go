package blenc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dacce/internal/graph"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

func TestRefreshKeepsUnaffectedCodes(t *testing.T) {
	fx, g := fig1Graph(t)
	// Drop DF for the initial encoding, then add it back incrementally:
	// only F's side changes; the AB/AC/BD/CD/DE codes must be reused
	// bit-for-bit.
	g2 := graph.New(fx.P)
	for _, s := range []string{"AB", "AC", "BD", "CD", "DE"} {
		g2.AddEdge(fx.S(s), fx.P.Site(fx.S(s)).Target)
	}
	prev := Encode(g2, Options{})
	added, _ := g2.AddEdge(fx.S("DF"), fx.F("F"))
	a, changed, affected, full := Refresh(g2, prev, []*graph.Edge{added}, Options{})
	if full {
		t.Fatal("acyclic addition fell back to full encode")
	}
	if !affected[fx.F("F")] {
		t.Error("target of the added edge not in the affected set")
	}
	for _, s := range []string{"AB", "AC", "BD", "CD", "DE"} {
		key := graph.EdgeKey{Site: fx.S(s), Target: fx.P.Site(fx.S(s)).Target}
		if a.Codes[key] != prev.Codes[key] {
			t.Errorf("unaffected edge %s changed: %v → %v", s, prev.Codes[key], a.Codes[key])
		}
	}
	c, ok := a.CodeOf(added)
	if !ok || !c.Encoded {
		t.Fatal("added edge not encoded")
	}
	if a.NumCC[fx.F("F")] != 2 {
		t.Errorf("numCC(F) = %d, want 2", a.NumCC[fx.F("F")])
	}
	if len(changed) == 0 {
		t.Error("no changed edges reported")
	}
	for _, key := range changed {
		if key.Site != fx.S("DF") {
			t.Errorf("unexpected changed edge %v", key)
		}
	}
	_ = g
}

func TestRefreshFallsBackOnNewCycle(t *testing.T) {
	fx, b := progtest.Fig5()
	p := b.MustBuild()
	fx.P = p
	g := graph.New(p)
	for _, s := range []string{"AC", "CD", "AD"} {
		g.AddEdge(fx.S(s), p.Site(fx.S(s)).Target)
	}
	prev := Encode(g, Options{})
	// D→A closes a cycle: back-edge classification changes nothing for
	// old edges (DA itself is the back edge)... the fallback triggers
	// only if an OLD edge's classification flips, so craft that: add
	// C→A? No such site in Fig5 — instead check the DA addition is
	// handled (either incrementally with DA unencoded, or fully).
	added, _ := g.AddEdge(fx.S("DA"), fx.F("A"))
	a, _, _, _ := Refresh(g, prev, []*graph.Edge{added}, Options{})
	c, ok := a.CodeOf(added)
	if !ok {
		t.Fatal("added edge missing from snapshot")
	}
	if c.Encoded || !c.Back {
		t.Errorf("new back edge mis-coded: %+v", c)
	}
}

// TestRefreshMatchesDecodability: property — an assignment produced by
// a chain of Refresh calls assigns valid, decodable prefix-sum codes:
// for every node the encoded in-edge codes are exactly the prefix sums
// of their callers' numCC in some order (the invariant the decoder
// relies on), and numCC ≥ 1 everywhere.
func TestRefreshInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		b := prog.NewBuilder()
		const nf = 24
		fns := make([]prog.FuncID, nf)
		fns[0] = b.Func("main")
		for i := 1; i < nf; i++ {
			fns[i] = b.Func("f" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		}
		type edgeSpec struct {
			s prog.SiteID
			t prog.FuncID
		}
		var specs []edgeSpec
		for i := 0; i < 60; i++ {
			from := rng.IntN(nf - 1)
			to := from + 1 + rng.IntN(nf-from-1) // forward: acyclic
			specs = append(specs, edgeSpec{b.CallSite(fns[from], fns[to]), fns[to]})
		}
		p := b.MustBuild()
		g := graph.New(p)

		// Seed with a third of the edges, then Refresh in random batches.
		prev := (*Assignment)(nil)
		i := 0
		for i < len(specs) {
			batchEnd := i + 1 + rng.IntN(8)
			if batchEnd > len(specs) {
				batchEnd = len(specs)
			}
			var added []*graph.Edge
			for ; i < batchEnd; i++ {
				e, fresh := g.AddEdge(specs[i].s, specs[i].t)
				if fresh {
					added = append(added, e)
				}
			}
			if prev == nil {
				prev = Encode(g, Options{})
				continue
			}
			a, _, _, _ := Refresh(g, prev, added, Options{})
			prev = a
		}

		// Invariants on the final assignment.
		for _, n := range g.NodeSeq {
			if prev.NumCC[n.Fn] == 0 {
				t.Logf("seed %d: numCC(%s) = 0", seed, n.Name())
				return false
			}
			var cs []coded
			for _, e := range n.In {
				c, ok := prev.Codes[graph.EdgeKey{Site: e.Site, Target: e.Target}]
				if !ok {
					t.Logf("seed %d: edge %v missing", seed, e)
					return false
				}
				if c.Encoded {
					cs = append(cs, coded{c.Value, prev.NumCC[e.Caller]})
				}
			}
			if len(cs) == 0 {
				continue
			}
			// Codes must partition [0, numCC(n)) as prefix sums.
			sortCoded(cs)
			var acc uint64
			for _, c := range cs {
				if c.val != acc {
					t.Logf("seed %d: node %s code %d, want %d", seed, n.Name(), c.val, acc)
					return false
				}
				acc += c.cc
			}
			if acc != prev.NumCC[n.Fn] {
				t.Logf("seed %d: node %s covers %d of %d", seed, n.Name(), acc, prev.NumCC[n.Fn])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sortCoded(cs []coded) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].val < cs[j-1].val; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

type coded struct {
	val uint64
	cc  uint64
}
