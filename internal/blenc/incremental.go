package blenc

import (
	"sort"

	"dacce/internal/graph"
	"dacce/internal/prog"
)

// Refresh computes the assignment after new edges were added, reusing
// prev wherever possible: only nodes downstream of the additions are
// renumbered, and every node keeps its previous in-edge order (new
// edges are appended coldest-last), so unaffected codes are bit-equal
// to prev's. This is the incremental counterpart of Encode — an
// extension beyond the paper, whose whole-graph re-encoding cost grows
// with the graph (Table 1 "costs"); an adaptive runtime can use Refresh
// for the frequent new-edges trigger and reserve full re-encodes for
// frequency reordering.
//
// Refresh falls back to a full Encode (and reports it) when the
// additions change any back-edge classification — a new cycle
// invalidates prev's structure — or when the budget is exceeded.
//
// The returned changed set lists the edges whose codes differ from
// prev (including the new ones); the caller only needs to repatch
// those sites. affected is the set of renumbered nodes — a superset of
// the targets of changed edges, needed by delta decode-index rebuilds
// because a node's in-edge ranges depend on its callers' numCC, which
// can change even when no in-edge code does (e.g. a single in-edge
// keeps code 0 while its caller's numCC grows). affected is nil when
// full is true (everything changed).
func Refresh(g *graph.Graph, prev *Assignment, added []*graph.Edge, opt Options) (a *Assignment, changed []graph.EdgeKey, affected map[prog.FuncID]bool, full bool) {
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	// Reclassify: cheap relative to renumbering, and required for
	// soundness (a new edge can make an old edge a back edge).
	g.ClassifyBackEdges()
	for _, e := range g.Edges {
		key := graph.EdgeKey{Site: e.Site, Target: e.Target}
		if prevCode, ok := prev.Codes[key]; ok && prevCode.Back != e.Back {
			return fullRefresh(g, prev, opt)
		}
	}
	if prev.Overflowed {
		// prev excluded cold edges; the exclusion set depends on global
		// frequencies, so recompute fully.
		return fullRefresh(g, prev, opt)
	}

	// Affected set: targets of added edges plus everything reachable
	// from them through non-back edges.
	affected = make(map[prog.FuncID]bool)
	var stack []prog.FuncID
	mark := func(fn prog.FuncID) {
		if !affected[fn] {
			affected[fn] = true
			stack = append(stack, fn)
		}
	}
	for _, e := range added {
		if !e.Back {
			mark(e.Target)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := g.Node(fn)
		if n == nil {
			continue
		}
		for _, e := range n.Out {
			if !e.Back {
				mark(e.Target)
			}
		}
	}

	a = &Assignment{
		NumCC: make(map[prog.FuncID]uint64, len(prev.NumCC)+len(affected)),
		Codes: make(map[graph.EdgeKey]Code, g.NumEdges()),
	}
	// Start from prev: unaffected nodes keep numCC; every current edge
	// is present in the snapshot.
	for fn, n := range prev.NumCC {
		a.NumCC[fn] = n
	}
	for _, e := range g.Edges {
		key := graph.EdgeKey{Site: e.Site, Target: e.Target}
		if c, ok := prev.Codes[key]; ok {
			a.Codes[key] = c
		} else {
			a.Codes[key] = Code{Back: e.Back}
		}
	}

	// Renumber affected nodes in topological order, keeping prev's
	// in-edge order and appending edges prev never saw.
	for _, n := range g.TopoOrder() {
		if !affected[n.Fn] {
			if _, ok := a.NumCC[n.Fn]; !ok {
				// Unaffected but also unknown to prev (isolated new
				// node): every node carries at least one context.
				a.NumCC[n.Fn] = 1
			}
			continue
		}
		ins := make([]*graph.Edge, 0, len(n.In))
		for _, e := range n.In {
			if !e.Back && (opt.Exclude == nil || !opt.Exclude(e)) {
				ins = append(ins, e)
			}
		}
		sort.SliceStable(ins, func(i, j int) bool {
			ci, iOld := prev.Codes[graph.EdgeKey{Site: ins[i].Site, Target: ins[i].Target}]
			cj, jOld := prev.Codes[graph.EdgeKey{Site: ins[j].Site, Target: ins[j].Target}]
			iOld = iOld && ci.Encoded
			jOld = jOld && cj.Encoded
			switch {
			case iOld && jOld:
				return ci.Value < cj.Value // previous order
			case iOld:
				return true // old edges before new ones
			case jOld:
				return false
			default:
				return ins[i].Seq < ins[j].Seq
			}
		})
		var acc uint64
		for _, e := range ins {
			key := graph.EdgeKey{Site: e.Site, Target: e.Target}
			c := a.Codes[key]
			c.Encoded = true
			c.Value = acc
			a.Codes[key] = c
			var over bool
			acc, over = satAdd(acc, a.NumCC[e.Caller])
			if over {
				return fullRefresh(g, prev, opt)
			}
		}
		if acc == 0 {
			acc = 1
		}
		a.NumCC[n.Fn] = acc
	}

	for _, n := range a.NumCC {
		if n-1 > a.MaxID {
			a.MaxID = n - 1
		}
	}
	a.UnrestrictedMaxID = a.MaxID
	if a.MaxID > budget {
		return fullRefresh(g, prev, opt)
	}
	for _, c := range a.Codes {
		if c.Encoded {
			a.EncodedEdges++
		}
	}

	// Changed set: differences against prev.
	for key, c := range a.Codes {
		pc, ok := prev.Codes[key]
		if !ok || pc != c {
			changed = append(changed, key)
		}
	}
	return a, changed, affected, false
}

// fullRefresh is the fallback: a complete Encode, with every edge
// reported as changed and a nil affected set.
func fullRefresh(g *graph.Graph, prev *Assignment, opt Options) (*Assignment, []graph.EdgeKey, map[prog.FuncID]bool, bool) {
	a := Encode(g, opt)
	changed := make([]graph.EdgeKey, 0, len(a.Codes))
	for key := range a.Codes {
		changed = append(changed, key)
	}
	return a, changed, nil, true
}
