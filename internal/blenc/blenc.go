// Package blenc implements the Ball–Larus-style calling-context
// numbering that both DACCE and PCCE build on (paper §2.1): processing
// nodes in topological order, numCC(n) is the number of calling contexts
// of n, and each acyclic in-edge e = (p → n) receives the code
// En(e) = Σ numCC(p') over the in-edges ordered before e. A context's id
// is then the sum of the edge codes along its call path, and the codes
// into any node partition [0, numCC(n)).
//
// Two aspects go beyond the textbook algorithm:
//
//   - Hot-first ordering: in-edges are ordered by descending observed
//     frequency before codes are assigned, so the hottest edge into every
//     node gets code 0 and needs no instrumentation at all (paper §4).
//
//   - Encoding-space budgeting: numCC is computed with saturating
//     arithmetic; if the ids outgrow the budget (PCCE on perlbench/gcc
//     overflows 64-bit ids, paper §6.3), the encoder excludes the coldest
//     eligible edges — never-invoked ones first, exactly the paper's
//     "edges that are never invoked in real runs are deleted" — until the
//     encoding fits, and reports that the unrestricted encoding
//     overflowed.
package blenc

import (
	"math"
	"sort"
	"sync/atomic"

	"dacce/internal/graph"
	"dacce/internal/prog"
)

// freqOf reads an edge's observed frequency atomically: encoding passes
// may run concurrently with live threads (the adaptive runtime's
// concurrent prepare), whose traps and sampling controller bump Freq
// with atomic adds.
func freqOf(e *graph.Edge) int64 { return atomic.LoadInt64(&e.Freq) }

// Code is the per-edge result of an encoding pass.
type Code struct {
	// Encoded reports whether the edge carries an id increment. If
	// false, invoking the edge saves context on the ccStack instead.
	Encoded bool
	// Value is the increment En(e); meaningful only when Encoded.
	Value uint64
	// Back records whether the edge was classified as a back edge in
	// this pass (needed by the decoder to interpret ccStack entries of
	// this epoch).
	Back bool
}

// Assignment is an immutable snapshot of one encoding pass: the decode
// dictionary for one gTimeStamp epoch (paper Fig. 6). An edge present in
// Codes existed when the pass ran; later edges are absent.
type Assignment struct {
	// MaxID is the maximum context id assignable under this encoding;
	// run-time ids in (MaxID, 2*MaxID+1] mark sub-paths with saved
	// context on the ccStack.
	MaxID uint64
	// NumCC maps each node to its number of calling contexts (≥ 1).
	NumCC map[prog.FuncID]uint64
	// Codes maps every edge that existed at snapshot time to its code.
	Codes map[graph.EdgeKey]Code
	// Overflowed reports that the unrestricted encoding exceeded the
	// budget and cold edges were excluded to fit.
	Overflowed bool
	// UnrestrictedMaxID is the (saturating) MaxID before any exclusion;
	// equal to MaxID when Overflowed is false.
	UnrestrictedMaxID uint64
	// Excluded is the number of otherwise-eligible edges left unencoded
	// to fit the budget.
	Excluded int
	// EncodedEdges is the number of edges with a code in this pass.
	EncodedEdges int
}

// CodeOf returns the code for an edge and whether the edge existed at
// snapshot time.
func (a *Assignment) CodeOf(e *graph.Edge) (Code, bool) {
	c, ok := a.Codes[graph.EdgeKey{Site: e.Site, Target: e.Target}]
	return c, ok
}

// Options configures an encoding pass.
type Options struct {
	// Budget caps MaxID; 0 means DefaultBudget. The factor-of-two
	// headroom for the ccStack marker range is the caller's concern:
	// budget 2^62 keeps 2*MaxID+1 < 2^63.
	Budget uint64
	// Exclude, if non-nil, marks edges the scheme does not want encoded
	// in this pass (e.g. DACCE's newly discovered edges awaiting the
	// next re-encoding, or PCCE's edges into dlopened modules). Back
	// edges are always excluded.
	Exclude func(e *graph.Edge) bool
	// NoHotOrder disables the hottest-first in-edge ordering (ablation:
	// without it no edge is guaranteed code 0, so hot paths keep their
	// instrumentation).
	NoHotOrder bool
}

// DefaultBudget is the largest MaxID the encoders allow, leaving one bit
// of headroom so 2*MaxID+1 still fits in the 64-bit id the prototype
// uses (paper §6.3).
const DefaultBudget = uint64(1) << 62

// satAdd adds with saturation, reporting overflow.
func satAdd(a, b uint64) (uint64, bool) {
	s := a + b
	if s < a {
		return math.MaxUint64, true
	}
	return s, false
}

// Encode runs one encoding pass over g. It classifies back edges as a
// side effect (Edge.Back is refreshed). Edge frequencies are read to
// order in-edges hottest-first; they are not modified.
func Encode(g *graph.Graph, opt Options) *Assignment {
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	g.ClassifyBackEdges()
	topo := g.TopoOrder()
	hotFirst := !opt.NoHotOrder

	eligible := func(e *graph.Edge) bool {
		if e.Back {
			return false
		}
		if opt.Exclude != nil && opt.Exclude(e) {
			return false
		}
		return true
	}

	// First pass: unrestricted, to detect overflow the way the paper
	// reports it.
	excluded := make(map[*graph.Edge]bool)
	a, sat := pass(g, topo, eligible, excluded, hotFirst)
	a.UnrestrictedMaxID = a.MaxID
	if !sat && a.MaxID <= budget {
		return a
	}

	// Overflow: exclude never-invoked eligible edges first (the paper's
	// fix), then progressively colder halves of the remainder.
	a.Overflowed = true
	unrestricted := a.UnrestrictedMaxID
	for _, e := range g.Edges {
		if eligible(e) && freqOf(e) == 0 {
			excluded[e] = true
		}
	}
	a2, sat2 := pass(g, topo, eligible, excluded, hotFirst)
	if !sat2 && a2.MaxID <= budget {
		a2.Overflowed = true
		a2.UnrestrictedMaxID = unrestricted
		a2.Excluded = len(excluded)
		return a2
	}

	// Still too large: drop the coldest half of the remaining encoded
	// edges until the encoding fits. Each round halves the candidate
	// set, so this terminates quickly.
	remaining := make([]*graph.Edge, 0)
	for _, e := range g.Edges {
		if eligible(e) && !excluded[e] {
			remaining = append(remaining, e)
		}
	}
	sort.SliceStable(remaining, func(i, j int) bool { return freqOf(remaining[i]) < freqOf(remaining[j]) })
	for len(remaining) > 0 {
		drop := (len(remaining) + 1) / 2
		for _, e := range remaining[:drop] {
			excluded[e] = true
		}
		remaining = remaining[drop:]
		a3, sat3 := pass(g, topo, eligible, excluded, hotFirst)
		if !sat3 && a3.MaxID <= budget {
			a3.Overflowed = true
			a3.UnrestrictedMaxID = unrestricted
			a3.Excluded = len(excluded)
			return a3
		}
	}
	// Nothing encoded at all: every edge goes through the ccStack. This
	// cannot overflow (MaxID is 0).
	a4, _ := pass(g, topo, eligible, excluded, hotFirst)
	a4.Overflowed = true
	a4.UnrestrictedMaxID = unrestricted
	a4.Excluded = len(excluded)
	return a4
}

// pass performs one numbering sweep with the given exclusions. It
// returns the assignment and whether any numCC saturated.
func pass(g *graph.Graph, topo []*graph.Node, eligible func(*graph.Edge) bool, excluded map[*graph.Edge]bool, hotFirst bool) (*Assignment, bool) {
	a := &Assignment{
		NumCC: make(map[prog.FuncID]uint64, len(topo)),
		Codes: make(map[graph.EdgeKey]Code, g.NumEdges()),
	}
	saturated := false

	// Record every live edge so the decode dictionary knows the graph
	// shape of this epoch.
	for _, e := range g.Edges {
		a.Codes[graph.EdgeKey{Site: e.Site, Target: e.Target}] = Code{Back: e.Back}
	}

	for _, n := range topo {
		// Gather eligible in-edges, hottest first. Ties break on
		// insertion order for determinism.
		ins := make([]*graph.Edge, 0, len(n.In))
		for _, e := range n.In {
			if eligible(e) && !excluded[e] {
				ins = append(ins, e)
			}
		}
		if hotFirst {
			sort.SliceStable(ins, func(i, j int) bool {
				fi, fj := freqOf(ins[i]), freqOf(ins[j])
				if fi != fj {
					return fi > fj
				}
				return ins[i].Seq < ins[j].Seq
			})
		}
		var acc uint64
		for _, e := range ins {
			key := graph.EdgeKey{Site: e.Site, Target: e.Target}
			c := a.Codes[key]
			c.Encoded = true
			c.Value = acc
			a.Codes[key] = c
			a.EncodedEdges++
			var over bool
			acc, over = satAdd(acc, a.NumCC[e.Caller])
			saturated = saturated || over
		}
		// Every node has at least one context: the entry, nodes reached
		// only through unencoded edges (sub-path heads), and unreachable
		// nodes all act as roots of their sub-paths.
		if acc == 0 {
			acc = 1
		}
		a.NumCC[n.Fn] = acc
		if acc-1 > a.MaxID {
			a.MaxID = acc - 1
		}
	}
	return a, saturated
}
