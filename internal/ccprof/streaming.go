package ccprof

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"dacce/internal/ccdag"
	"dacce/internal/core"
	"dacce/internal/prog"
)

// Streaming is the always-on profiler: a core.ContextObserver that
// aggregates every context the sampling controller decodes, while the
// program runs, into the same calling-context tree an offline Profile
// builds — without adding a lock or an allocation to the sample path.
//
// Contention follows the PR-5 sharded-buffer idiom: each machine thread
// accumulates into its own shard (a private CCT guarded by a mutex only
// that thread and the merger touch, so steady-state acquisition is
// uncontended), and shards are folded into the merged profile only when
// an export asks for it. Observe allocates nothing once a context's
// node path exists; shard registration and first-visit node creation
// are warm-up costs.
//
// Streaming also implements core.NodeObserver, so an encoder with a
// context DAG dispatches interned *ccdag.Node values instead of frame
// slices. In that mode a shard is a count per canonical node — one map
// increment under the shard lock, no tree descent at all — and the
// per-context tree work moves to merge time, where each distinct node
// is materialized once and folded in with its accumulated weight.
type Streaming struct {
	p *prog.Program

	// shards is indexed by machine thread id and grown copy-on-write
	// under mu, so the Observe fast path is one atomic load + index.
	shards atomic.Pointer[[]*streamShard]

	// mu serializes shard-registry growth, merging and exports.
	mu     sync.Mutex
	merged *Profile

	// mscratch is the merge-time materialization buffer for node-mode
	// shards, reused across nodes and merges.
	mscratch core.Context

	observed atomic.Int64
}

// streamShard is one thread's private accumulation tree. incl/excl
// counts accumulate between merges; Merge drains them into the shared
// profile and zeroes them, keeping the nodes for reuse.
type streamShard struct {
	mu      sync.Mutex
	root    snode
	pending int64 // contexts accumulated since the last merge

	// nodes holds node-mode counts keyed by canonical context node.
	// Merge zeroes the counts but keeps the keys, so a steady-state
	// workload re-accumulates with zero-allocation map increments.
	nodes map[*ccdag.Node]int64
}

// snode mirrors Node for the per-shard tree, without parent pointers:
// shards only ever descend.
type snode struct {
	site     prog.SiteID
	fn       prog.FuncID
	excl     int64
	incl     int64
	children []*snode
}

func (n *snode) child(site prog.SiteID, fn prog.FuncID) *snode {
	for _, c := range n.children {
		if c.site == site && c.fn == fn {
			return c
		}
	}
	c := &snode{site: site, fn: fn}
	n.children = append(n.children, c)
	return c
}

// NewStreaming returns an empty streaming profiler over p. Attach it
// with core.Options.ContextObserver or DACCE.SetContextObserver.
func NewStreaming(p *prog.Program) *Streaming {
	s := &Streaming{p: p, merged: New(p)}
	empty := make([]*streamShard, 0)
	s.shards.Store(&empty)
	return s
}

// shard returns the calling thread's shard, creating and registering it
// on first sight of the thread id (copy-on-write growth under mu; the
// loop re-checks because two new threads can race the growth).
func (s *Streaming) shard(thread int) *streamShard {
	for {
		sp := *s.shards.Load()
		if thread < len(sp) && sp[thread] != nil {
			return sp[thread]
		}
		s.mu.Lock()
		sp = *s.shards.Load()
		if thread < len(sp) && sp[thread] != nil {
			s.mu.Unlock()
			return sp[thread]
		}
		grown := make([]*streamShard, max(thread+1, len(sp)))
		copy(grown, sp)
		sh := &streamShard{root: snode{site: prog.NoSite, fn: s.p.Entry}}
		grown[thread] = sh
		s.shards.Store(&grown)
		s.mu.Unlock()
		return sh
	}
}

// ObserveContext implements core.ContextObserver: fold one decoded
// context into the calling thread's shard. Replicates Profile.Add
// exactly (root matching, synthetic children for foreign thread roots,
// inclusive along the path, exclusive at the leaf), so merging all
// shards yields the same tree an offline Add-per-context build does.
// ctx is consumed before return, never retained.
func (s *Streaming) ObserveContext(thread int, ctx core.Context) {
	if len(ctx) == 0 || thread < 0 {
		return
	}
	sh := s.shard(thread)
	sh.mu.Lock()
	cur := &sh.root
	cur.incl++
	if ctx[0].Fn != cur.fn {
		cur = cur.child(prog.NoSite, ctx[0].Fn)
		cur.incl++
	}
	for _, f := range ctx[1:] {
		cur = cur.child(f.Site, f.Fn)
		cur.incl++
	}
	cur.excl++
	sh.pending++
	sh.mu.Unlock()
	s.observed.Add(1)
}

// ObserveContextNode implements core.NodeObserver: count one canonical
// context node in the calling thread's shard. The whole per-sample cost
// is a map increment — the tree fold happens once per distinct node at
// merge time instead of once per sample, and pointer-keyed increments
// on warm keys allocate nothing.
func (s *Streaming) ObserveContextNode(thread int, n *ccdag.Node) {
	if n == nil || thread < 0 {
		return
	}
	sh := s.shard(thread)
	sh.mu.Lock()
	if sh.nodes == nil {
		sh.nodes = make(map[*ccdag.Node]int64)
	}
	// No sh.pending here: addN bumps the merged total itself at merge
	// time, where slice-mode counts flow through pending instead.
	sh.nodes[n]++
	sh.mu.Unlock()
	s.observed.Add(1)
}

// Observed returns how many contexts the profiler has consumed.
func (s *Streaming) Observed() int64 { return s.observed.Load() }

// mergeLocked drains every shard's accumulated counts into the merged
// profile. Caller holds s.mu. With drop false, shard trees and node
// maps keep their (zeroed) entries, so a steady-state workload
// re-accumulates without allocating. With drop true, node-map keys are
// deleted after folding — inside the same per-shard critical section,
// so no increment can land between the fold and the delete — releasing
// the shards' *ccdag.Node pins for DAG reclamation; the next sample per
// context re-creates its key (one map insert, warm-up cost only).
func (s *Streaming) mergeLocked(drop bool) {
	sp := *s.shards.Load()
	for _, sh := range sp {
		if sh == nil {
			continue
		}
		sh.mu.Lock()
		s.absorb(&sh.root, s.merged.root)
		s.merged.total += sh.pending
		for n, w := range sh.nodes {
			if w != 0 {
				s.mscratch = core.AppendNodeContext(s.mscratch, n)
				_ = s.merged.addN(s.mscratch, w)
			}
			if !drop {
				sh.nodes[n] = 0
			}
		}
		if drop {
			clear(sh.nodes)
		}
		sh.pending = 0
		sh.mu.Unlock()
	}
}

// ReleaseNodes implements core.NodeReleaser: fold every shard's pending
// node counts into the merged profile and drop the node keys, so the
// profiler no longer pins any *ccdag.Node and a DAG collection can free
// contexts that are otherwise dead. The merged profile keeps the full
// aggregated tree — it stores frames, not node pointers — so no counts
// are lost. The encoder calls this before each reclamation pass; safe
// concurrently with ObserveContextNode.
func (s *Streaming) ReleaseNodes() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(true)
}

func (s *Streaming) absorb(from *snode, into *Node) {
	into.Inclusive += from.incl
	into.Exclusive += from.excl
	from.incl, from.excl = 0, 0
	for _, c := range from.children {
		s.absorb(c, s.merged.child(into, c.site, c.fn))
	}
}

// Profile merges all pending accumulation and returns a deep copy of
// the aggregate — an ordinary offline profile safe for Hot, WriteTree,
// Diff and further Adds, detached from the live profiler.
func (s *Streaming) Profile() *Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(false)
	return s.merged.clone()
}

// Total merges and returns the aggregate context count.
func (s *Streaming) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(false)
	return s.merged.total
}

// WritePprof merges and writes the aggregate as a gzipped pprof
// protobuf profile.
func (s *Streaming) WritePprof(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(false)
	return s.merged.WritePprof(w)
}

// WriteFolded merges and writes the aggregate in folded-stack form.
func (s *Streaming) WriteFolded(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(false)
	return s.merged.WriteFolded(w)
}

// Handler serves the live profile over HTTP: pprof protobuf by default,
// folded text with ?format=folded, the context tree with ?format=tree —
// the /debug/ccprof endpoint of dacced and daccerun.
func (s *Streaming) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = s.WriteFolded(w)
		case "tree":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			pr := s.Profile()
			_ = pr.WriteTree(w, 0.001)
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="ccprof.pb.gz"`)
			if err := s.WritePprof(w); err != nil {
				http.Error(w, fmt.Sprintf("writing profile: %v", err), http.StatusInternalServerError)
			}
		}
	})
}

// clone deep-copies a profile.
func (pr *Profile) clone() *Profile {
	out := New(pr.p)
	out.total = pr.total
	var rec func(src *Node, dst *Node)
	rec = func(src, dst *Node) {
		dst.Exclusive = src.Exclusive
		dst.Inclusive = src.Inclusive
		for _, c := range src.Children {
			rec(c, out.child(dst, c.Site, c.Fn))
		}
	}
	rec(pr.root, out.root)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
