// pprof protobuf export. The profile.proto encoding is hand-rolled —
// the repo carries no generated protobuf code and no dependencies — so
// this file implements the minimal writer (and, for validation, reader)
// of the subset of the format a calling-context profile needs: one
// sample type, samples whose location chain is the context leaf-first,
// one location and function per program function. `go tool pprof`
// accepts the output directly.
package ccprof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"dacce/internal/prog"
)

// proto wire types.
const (
	wireVarint = 0
	wireBytes  = 2
)

// protoBuf is a minimal protobuf writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, wireVarint)
	p.varint(v)
}

func (p *protoBuf) intField(field int, v int64) { p.uintField(field, uint64(v)) }

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) { p.bytesField(field, []byte(s)) }

func (p *protoBuf) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

func (p *protoBuf) msgField(field int, m *protoBuf) { p.bytesField(field, m.b) }

// WritePprof serializes the profile as a gzipped pprof protobuf
// (sample type "samples"/"count"; each distinct context becomes one
// sample weighted by its exclusive count, its location chain leaf
// first). Frames map to functions — call-site detail folds together,
// matching the folded-stack view.
func (pr *Profile) WritePprof(w io.Writer) error {
	// String table: index 0 must be "".
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}
	samplesStr := intern("samples")
	countStr := intern("count")

	// One function + location per program function actually present in
	// the tree; ids are FuncID+1 (pprof ids must be nonzero).
	seen := map[prog.FuncID]bool{}
	var order []prog.FuncID
	pr.walk(func(n *Node) {
		if n.Fn >= 0 && !seen[n.Fn] {
			seen[n.Fn] = true
			order = append(order, n.Fn)
		}
	})

	var out protoBuf

	// sample_type: one ValueType{type: "samples", unit: "count"}.
	var vt protoBuf
	vt.intField(1, samplesStr)
	vt.intField(2, countStr)
	out.msgField(1, &vt)

	// samples: leaf-first location chains.
	pr.walk(func(n *Node) {
		if n.Exclusive <= 0 {
			return
		}
		var locs []uint64
		for cur := n; cur != nil; cur = cur.Parent {
			if cur.Fn >= 0 {
				locs = append(locs, uint64(cur.Fn)+1)
			}
		}
		var sm protoBuf
		sm.packedField(1, locs)
		sm.packedField(2, []uint64{uint64(n.Exclusive)})
		out.msgField(2, &sm)
	})

	// locations + functions.
	for _, fn := range order {
		id := uint64(fn) + 1
		var line protoBuf
		line.uintField(1, id) // function_id
		var loc protoBuf
		loc.uintField(1, id) // id
		loc.msgField(4, &line)
		out.msgField(4, &loc)
	}
	for _, fn := range order {
		name := intern(pr.funcName(fn))
		var f protoBuf
		f.uintField(1, uint64(fn)+1) // id
		f.intField(2, name)          // name
		f.intField(3, name)          // system_name
		out.msgField(5, &f)
	}

	// string_table (all entries, "" included).
	for _, s := range strs {
		out.stringField(6, s)
	}

	// period_type + period: one context per sample.
	var pt protoBuf
	pt.intField(1, samplesStr)
	pt.intField(2, countStr)
	out.msgField(11, &pt)
	out.uintField(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}

// PprofTotals parses a (gzipped or raw) pprof protobuf profile and
// returns its sample count and the sum of every sample's first value —
// the integrity check the tests and the smoke CI run against exported
// profiles without shelling out to `go tool pprof`.
func PprofTotals(r io.Reader) (samples int, total int64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, 0, err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return 0, 0, fmt.Errorf("ccprof: pprof gzip: %v", err)
		}
		if data, err = io.ReadAll(gz); err != nil {
			return 0, 0, fmt.Errorf("ccprof: pprof gunzip: %v", err)
		}
	}
	seenStringTable := false
	err = protoFields(data, func(field int, wire int, varint uint64, body []byte) error {
		switch field {
		case 2: // Sample
			if wire != wireBytes {
				return fmt.Errorf("sample field has wire type %d", wire)
			}
			samples++
			return protoFields(body, func(f, w int, v uint64, b []byte) error {
				if f == 2 { // value (packed int64)
					vs, err := unpackVarints(b, w, v)
					if err != nil {
						return err
					}
					if len(vs) > 0 {
						total += int64(vs[0])
					}
				}
				return nil
			})
		case 6:
			seenStringTable = true
		}
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("ccprof: parsing pprof: %v", err)
	}
	if !seenStringTable {
		return 0, 0, fmt.Errorf("ccprof: pprof profile has no string table")
	}
	return samples, total, nil
}

// protoFields walks the top-level fields of one message.
func protoFields(data []byte, f func(field, wire int, varint uint64, body []byte) error) error {
	for len(data) > 0 {
		key, n := readVarint(data)
		if n <= 0 {
			return fmt.Errorf("truncated tag")
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case wireVarint:
			v, n := readVarint(data)
			if n <= 0 {
				return fmt.Errorf("truncated varint in field %d", field)
			}
			data = data[n:]
			if err := f(field, wire, v, nil); err != nil {
				return err
			}
		case wireBytes:
			l, n := readVarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("truncated bytes in field %d", field)
			}
			body := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := f(field, wire, 0, body); err != nil {
				return err
			}
		case 1: // 64-bit
			if len(data) < 8 {
				return fmt.Errorf("truncated fixed64 in field %d", field)
			}
			data = data[8:]
		case 5: // 32-bit
			if len(data) < 4 {
				return fmt.Errorf("truncated fixed32 in field %d", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// unpackVarints decodes a packed-varint payload (or a single unpacked
// varint occurrence).
func unpackVarints(body []byte, wire int, varint uint64) ([]uint64, error) {
	if wire == wireVarint {
		return []uint64{varint}, nil
	}
	var out []uint64
	for len(body) > 0 {
		v, n := readVarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("truncated packed varint")
		}
		out = append(out, v)
		body = body[n:]
	}
	return out, nil
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
