package ccprof

import (
	"strings"
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/workload"
)

// tiny builds main→{a,b}, a→c and returns contexts for testing.
func tiny(t *testing.T) (*prog.Program, core.Context, core.Context, core.Context) {
	t.Helper()
	b := prog.NewBuilder()
	mainF := b.Func("main")
	a := b.Func("a")
	bb := b.Func("b")
	c := b.Func("c")
	sa := b.CallSite(mainF, a)
	sb := b.CallSite(mainF, bb)
	sc := b.CallSite(a, c)
	p := b.MustBuild()
	ctxA := core.Context{{Site: prog.NoSite, Fn: mainF}, {Site: sa, Fn: a}}
	ctxB := core.Context{{Site: prog.NoSite, Fn: mainF}, {Site: sb, Fn: bb}}
	ctxC := core.Context{{Site: prog.NoSite, Fn: mainF}, {Site: sa, Fn: a}, {Site: sc, Fn: c}}
	return p, ctxA, ctxB, ctxC
}

func TestAddAndHot(t *testing.T) {
	p, ctxA, ctxB, ctxC := tiny(t)
	pr := New(p)
	for i := 0; i < 6; i++ {
		if err := pr.Add(ctxA); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		pr.Add(ctxB)
	}
	pr.Add(ctxC)
	if pr.Total() != 10 {
		t.Fatalf("total = %d", pr.Total())
	}
	if pr.NumContexts() != 3 {
		t.Fatalf("distinct contexts = %d, want 3", pr.NumContexts())
	}
	hot := pr.Hot(2)
	if len(hot) != 2 {
		t.Fatalf("hot = %d entries", len(hot))
	}
	if !hot[0].Context.Equal(ctxA) || hot[0].Count != 6 || hot[0].Frac != 0.6 {
		t.Errorf("hot[0] = %+v", hot[0])
	}
	if !hot[1].Context.Equal(ctxB) || hot[1].Count != 3 {
		t.Errorf("hot[1] = %+v", hot[1])
	}
}

func TestInclusiveExclusive(t *testing.T) {
	p, ctxA, _, ctxC := tiny(t)
	pr := New(p)
	pr.Add(ctxA)
	pr.Add(ctxC)
	// Node a: one exclusive (ctxA), two inclusive (ctxA + ctxC).
	var aNode *Node
	pr.walk(func(n *Node) {
		if n.Fn == ctxA[1].Fn && n.Parent != nil && n.Parent.Fn == p.Entry {
			aNode = n
		}
	})
	if aNode == nil {
		t.Fatal("node a missing")
	}
	if aNode.Exclusive != 1 || aNode.Inclusive != 2 {
		t.Errorf("a: excl=%d incl=%d, want 1/2", aNode.Exclusive, aNode.Inclusive)
	}
}

func TestWriteTree(t *testing.T) {
	p, ctxA, ctxB, _ := tiny(t)
	pr := New(p)
	pr.Add(ctxA)
	pr.Add(ctxA)
	pr.Add(ctxB)
	var sb strings.Builder
	if err := pr.WriteTree(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"main", "a", "b", "66.67% incl"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Hotter child listed first.
	if strings.Index(out, "a ") > strings.Index(out, "b ") {
		t.Errorf("children not hottest-first:\n%s", out)
	}
}

func TestWriteTreeEmpty(t *testing.T) {
	p, _, _, _ := tiny(t)
	var sb strings.Builder
	if err := New(p).WriteTree(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty profile rendering: %q", sb.String())
	}
}

func TestAddRejectsEmpty(t *testing.T) {
	p, _, _, _ := tiny(t)
	if err := New(p).Add(nil); err == nil {
		t.Error("empty context accepted")
	}
}

func TestDiff(t *testing.T) {
	p, ctxA, ctxB, ctxC := tiny(t)
	a := New(p)
	for i := 0; i < 8; i++ {
		a.Add(ctxA)
	}
	for i := 0; i < 2; i++ {
		a.Add(ctxB)
	}
	b := New(p)
	for i := 0; i < 2; i++ {
		b.Add(ctxA)
	}
	for i := 0; i < 6; i++ {
		b.Add(ctxB)
	}
	for i := 0; i < 2; i++ {
		b.Add(ctxC)
	}
	d := Diff(a, b)
	if len(d) != 3 {
		t.Fatalf("diff has %d entries, want 3", len(d))
	}
	// ctxA went 0.8 → 0.2 (−0.6) and ctxB 0.2 → 0.6 (+0.4): A first.
	if !d[0].Context.Equal(ctxA) || d[0].Delta > -0.59 {
		t.Errorf("d[0] = %+v", d[0])
	}
	if !d[1].Context.Equal(ctxB) || d[1].Delta < 0.39 {
		t.Errorf("d[1] = %+v", d[1])
	}
	// ctxC is new in B.
	if !d[2].Context.Equal(ctxC) || d[2].FracA != 0 || d[2].FracB != 0.2 {
		t.Errorf("d[2] = %+v", d[2])
	}
}

// TestProfileFromRealRun aggregates a DACCE run's samples end to end.
func TestProfileFromRealRun(t *testing.T) {
	wpr, _ := workload.ByName("456.hmmer")
	wpr.TotalCalls = 30_000
	w := workload.MustBuild(wpr)
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 17})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	pr := New(w.P)
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Add(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Total() != int64(len(rs.Samples)) {
		t.Fatalf("profile total %d != samples %d", pr.Total(), len(rs.Samples))
	}
	hot := pr.Hot(5)
	if len(hot) == 0 {
		t.Fatal("no hot contexts")
	}
	var sum float64
	for _, h := range hot {
		sum += h.Frac
	}
	if sum <= 0 || sum > 1 {
		t.Errorf("hot fractions sum to %v", sum)
	}
	var sb strings.Builder
	if err := pr.WriteTree(&sb, 0.02); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "main") {
		t.Error("tree missing main")
	}
}

// TestMultiRootProfile holds several threads' contexts in one profile.
func TestMultiRootProfile(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	worker := b.Func("worker")
	p := b.MustBuild()
	pr := New(p)
	pr.Add(core.Context{{Site: prog.NoSite, Fn: mainF}})
	pr.Add(core.Context{{Site: prog.NoSite, Fn: worker}})
	if pr.Total() != 2 {
		t.Fatalf("total %d", pr.Total())
	}
	if pr.NumContexts() != 2 {
		t.Errorf("distinct %d, want 2 (main and worker roots)", pr.NumContexts())
	}
}
