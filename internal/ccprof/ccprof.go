// Package ccprof aggregates decoded calling contexts into profiles —
// the performance-analysis application the paper motivates (§1, citing
// HPCToolkit): hot context ranking, context trees with inclusive and
// exclusive counts, and diffs between two runs. It consumes the samples
// any encoding scheme produces; with DACCE the per-sample cost is a
// capture, not a stack walk.
package ccprof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dacce/internal/core"
	"dacce/internal/prog"
)

// Profile is an aggregated calling-context profile.
type Profile struct {
	p     *prog.Program
	root  *Node
	total int64
}

// Node is one calling-context-tree node with sample counts.
type Node struct {
	Site prog.SiteID
	Fn   prog.FuncID
	// Exclusive counts samples whose deepest frame is this node;
	// Inclusive counts samples anywhere in this node's subtree.
	Exclusive int64
	Inclusive int64
	Children  []*Node
	Parent    *Node
}

// New returns an empty profile over p.
func New(p *prog.Program) *Profile {
	return &Profile{p: p, root: &Node{Site: prog.NoSite, Fn: p.Entry}}
}

// Add records one decoded context.
func (pr *Profile) Add(ctx core.Context) error { return pr.addN(ctx, 1) }

// addN records a context with weight n — the bulk path folded-stack
// parsing and shard merging use.
func (pr *Profile) addN(ctx core.Context, n int64) error {
	if len(ctx) == 0 {
		return fmt.Errorf("ccprof: empty context")
	}
	pr.total += n
	cur := pr.root
	cur.Inclusive += n
	if ctx[0].Fn != cur.Fn {
		// A different thread root: hang it off a synthetic child so one
		// profile can hold all threads.
		cur = pr.child(cur, prog.NoSite, ctx[0].Fn)
		cur.Inclusive += n
	}
	for _, f := range ctx[1:] {
		cur = pr.child(cur, f.Site, f.Fn)
		cur.Inclusive += n
	}
	cur.Exclusive += n
	return nil
}

func (pr *Profile) child(n *Node, site prog.SiteID, fn prog.FuncID) *Node {
	for _, c := range n.Children {
		if c.Site == site && c.Fn == fn {
			return c
		}
	}
	c := &Node{Site: site, Fn: fn, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// Total returns the number of contexts added.
func (pr *Profile) Total() int64 { return pr.total }

// Root returns the context tree root.
func (pr *Profile) Root() *Node { return pr.root }

// NumContexts returns the number of distinct contexts (nodes with
// exclusive samples).
func (pr *Profile) NumContexts() int {
	n := 0
	pr.walk(func(nd *Node) {
		if nd.Exclusive > 0 {
			n++
		}
	})
	return n
}

func (pr *Profile) walk(f func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(pr.root)
}

// HotContext is one ranked entry.
type HotContext struct {
	Context core.Context
	Count   int64
	Frac    float64
}

// Hot returns the n hottest contexts by exclusive count.
func (pr *Profile) Hot(n int) []HotContext {
	var nodes []*Node
	pr.walk(func(nd *Node) {
		if nd.Exclusive > 0 {
			nodes = append(nodes, nd)
		}
	})
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Exclusive != nodes[j].Exclusive {
			return nodes[i].Exclusive > nodes[j].Exclusive
		}
		return pathLess(nodes[i], nodes[j])
	})
	if n > len(nodes) {
		n = len(nodes)
	}
	out := make([]HotContext, 0, n)
	for _, nd := range nodes[:n] {
		out = append(out, HotContext{
			Context: pr.pathOf(nd),
			Count:   nd.Exclusive,
			Frac:    float64(nd.Exclusive) / float64(pr.total),
		})
	}
	return out
}

// pathOf reconstructs the context of a node.
func (pr *Profile) pathOf(n *Node) core.Context {
	var rev core.Context
	for ; n != nil; n = n.Parent {
		rev = append(rev, core.ContextFrame{Site: n.Site, Fn: n.Fn})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func pathLess(a, b *Node) bool {
	// Deterministic tie-break on the path ids.
	pa, pb := a, b
	for pa != nil && pb != nil {
		if pa.Fn != pb.Fn {
			return pa.Fn < pb.Fn
		}
		if pa.Site != pb.Site {
			return pa.Site < pb.Site
		}
		pa, pb = pa.Parent, pb.Parent
	}
	return pa == nil && pb != nil
}

// WriteTree renders the context tree (nodes with at least minFrac of
// inclusive samples) as an indented listing.
func (pr *Profile) WriteTree(w io.Writer, minFrac float64) error {
	var rec func(n *Node, depth int) error
	rec = func(n *Node, depth int) error {
		frac := float64(n.Inclusive) / float64(pr.total)
		if frac < minFrac {
			return nil
		}
		name := "?"
		if int(n.Fn) >= 0 && int(n.Fn) < pr.p.NumFuncs() {
			name = pr.p.Funcs[n.Fn].Name
		}
		if _, err := fmt.Fprintf(w, "%s%-30s %6.2f%% incl  %6.2f%% excl\n",
			strings.Repeat("  ", depth), name,
			100*frac, 100*float64(n.Exclusive)/float64(pr.total)); err != nil {
			return err
		}
		// Children hottest-first, deterministic.
		kids := append([]*Node(nil), n.Children...)
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Inclusive != kids[j].Inclusive {
				return kids[i].Inclusive > kids[j].Inclusive
			}
			return pathLess(kids[i], kids[j])
		})
		for _, c := range kids {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if pr.total == 0 {
		_, err := fmt.Fprintln(w, "(empty profile)")
		return err
	}
	return rec(pr.root, 0)
}

// DiffEntry is one context whose weight changed between two profiles.
type DiffEntry struct {
	Context  core.Context
	FracA    float64
	FracB    float64
	Delta    float64 // FracB - FracA
	AbsDelta float64
}

// Diff compares two profiles over the same program and returns contexts
// ordered by absolute weight change — "what got hot" between two runs
// (regression hunting with calling-context precision).
func Diff(a, b *Profile) []DiffEntry {
	type key string
	weights := func(p *Profile) map[key]*DiffEntry {
		m := make(map[key]*DiffEntry)
		p.walk(func(n *Node) {
			if n.Exclusive == 0 {
				return
			}
			ctx := p.pathOf(n)
			m[key(ctx.String())] = &DiffEntry{
				Context: ctx,
				FracA:   float64(n.Exclusive) / float64(p.total),
			}
		})
		return m
	}
	wa := weights(a)
	wb := weights(b)
	merged := make(map[key]*DiffEntry, len(wa)+len(wb))
	for k, e := range wa {
		merged[k] = &DiffEntry{Context: e.Context, FracA: e.FracA}
	}
	for k, e := range wb {
		if m, ok := merged[k]; ok {
			m.FracB = e.FracA
		} else {
			merged[k] = &DiffEntry{Context: e.Context, FracB: e.FracA}
		}
	}
	out := make([]DiffEntry, 0, len(merged))
	for _, e := range merged {
		e.Delta = e.FracB - e.FracA
		e.AbsDelta = e.Delta
		if e.AbsDelta < 0 {
			e.AbsDelta = -e.AbsDelta
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AbsDelta != out[j].AbsDelta {
			return out[i].AbsDelta > out[j].AbsDelta
		}
		return out[i].Context.String() < out[j].Context.String()
	})
	return out
}
