package ccprof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dacce/internal/core"
	"dacce/internal/prog"
)

// WriteFolded renders the profile in folded-stack form — one line per
// calling context, frames root-first joined by ';', followed by the
// exclusive count — the input format of flame-graph tooling
// (flamegraph.pl, speedscope, inferno). Frames are function names, so
// contexts that differ only in call site fold together; lines are
// sorted for deterministic output.
func (pr *Profile) WriteFolded(w io.Writer) error {
	counts := map[string]int64{}
	var walkPath func(n *Node, path string)
	walkPath = func(n *Node, path string) {
		name := pr.funcName(n.Fn)
		if path == "" {
			path = name
		} else {
			path = path + ";" + name
		}
		if n.Exclusive > 0 {
			counts[path] += n.Exclusive
		}
		for _, c := range n.Children {
			walkPath(c, path)
		}
	}
	walkPath(pr.root, "")
	lines := make([]string, 0, len(counts))
	for path, n := range counts {
		lines = append(lines, fmt.Sprintf("%s %d", path, n))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// ParseFolded reads folded-stack lines back into a profile over p.
// Frames are resolved by function name; sites are lost in the folded
// form, so every reconstructed frame carries prog.NoSite — inclusive
// and exclusive counts aggregated by function path survive the
// round-trip exactly.
func ParseFolded(p *prog.Program, r io.Reader) (*Profile, error) {
	byName := make(map[string]prog.FuncID, p.NumFuncs())
	for i := range p.Funcs {
		byName[p.Funcs[i].Name] = prog.FuncID(i)
	}
	pr := New(p)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("ccprof: folded line %d: no count: %q", lineNo, line)
		}
		count, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil || count < 0 {
			return nil, fmt.Errorf("ccprof: folded line %d: bad count %q", lineNo, line[sp+1:])
		}
		names := strings.Split(line[:sp], ";")
		ctx := make(core.Context, 0, len(names))
		for _, name := range names {
			fn, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("ccprof: folded line %d: unknown function %q", lineNo, name)
			}
			ctx = append(ctx, core.ContextFrame{Site: prog.NoSite, Fn: fn})
		}
		if err := pr.addN(ctx, count); err != nil {
			return nil, fmt.Errorf("ccprof: folded line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ccprof: reading folded input: %v", err)
	}
	return pr, nil
}

func (pr *Profile) funcName(fn prog.FuncID) string {
	if int(fn) >= 0 && int(fn) < pr.p.NumFuncs() {
		return pr.p.Funcs[fn].Name
	}
	return "?"
}
