package ccprof

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dacce/internal/ccdag"
	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/workload"
)

// flatten maps every node path (site/fn pairs root-first) to its
// inclusive and exclusive counts, for structural profile comparison.
func flatten(pr *Profile) map[string][2]int64 {
	out := map[string][2]int64{}
	var rec func(n *Node, path string)
	rec = func(n *Node, path string) {
		path = path + fmt.Sprintf("/(%d,%d)", n.Site, n.Fn)
		out[path] = [2]int64{n.Inclusive, n.Exclusive}
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(pr.root, "")
	return out
}

func sameProfile(t *testing.T, got, want *Profile) {
	t.Helper()
	if got.Total() != want.Total() {
		t.Fatalf("total %d != %d", got.Total(), want.Total())
	}
	g, w := flatten(got), flatten(want)
	if len(g) != len(w) {
		t.Fatalf("node count %d != %d", len(g), len(w))
	}
	for path, counts := range w {
		if g[path] != counts {
			t.Fatalf("node %s: got %v want %v", path, g[path], counts)
		}
	}
}

// TestStreamingMatchesOffline is the merge-order property test: contexts
// observed concurrently from many threads, in arbitrary per-thread
// orders with merges racing the observation, must aggregate to exactly
// the profile an offline single-threaded Add-per-context build yields.
// Run under -race this also proves the shard registry and merge locking.
func TestStreamingMatchesOffline(t *testing.T) {
	p, ctxA, ctxB, ctxC := tiny(t)
	contexts := []core.Context{ctxA, ctxB, ctxC}

	const threads = 8
	const perThread = 500
	rng := rand.New(rand.NewSource(1))
	// Pre-assign every observation so the offline reference sees the
	// same multiset regardless of scheduling.
	plan := make([][]core.Context, threads)
	offline := New(p)
	for th := 0; th < threads; th++ {
		for i := 0; i < perThread; i++ {
			ctx := contexts[rng.Intn(len(contexts))]
			plan[th] = append(plan[th], ctx)
			if err := offline.Add(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	s := NewStreaming(p)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i, ctx := range plan[th] {
				s.ObserveContext(th, ctx)
				if i%97 == 0 {
					// Merges racing observation must not lose or double
					// counts.
					s.Total()
				}
			}
		}(th)
	}
	wg.Wait()

	if s.Observed() != threads*perThread {
		t.Fatalf("observed %d, want %d", s.Observed(), threads*perThread)
	}
	sameProfile(t, s.Profile(), offline)
	// A second snapshot (everything already merged) must be identical.
	sameProfile(t, s.Profile(), offline)
}

// TestStreamingNodeModeMatchesOffline is the node-mode twin of the
// merge-order property test: the same observation plan delivered as
// interned DAG nodes through ObserveContextNode, with merges racing the
// observers, must aggregate to exactly the offline Add-per-context
// profile. This pins the node→materialize→addN merge path to the slice
// path's semantics.
func TestStreamingNodeModeMatchesOffline(t *testing.T) {
	p, ctxA, ctxB, ctxC := tiny(t)
	contexts := []core.Context{ctxA, ctxB, ctxC}

	dag := ccdag.New()
	nodes := make([]*ccdag.Node, len(contexts))
	for i, ctx := range contexts {
		var n *ccdag.Node
		for _, f := range ctx {
			n = dag.Intern(n, f.Site, f.Fn)
		}
		nodes[i] = n
	}

	const threads = 8
	const perThread = 500
	rng := rand.New(rand.NewSource(2))
	plan := make([][]int, threads)
	offline := New(p)
	for th := 0; th < threads; th++ {
		for i := 0; i < perThread; i++ {
			k := rng.Intn(len(contexts))
			plan[th] = append(plan[th], k)
			if err := offline.Add(contexts[k]); err != nil {
				t.Fatal(err)
			}
		}
	}

	s := NewStreaming(p)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i, k := range plan[th] {
				s.ObserveContextNode(th, nodes[k])
				if i%89 == 0 {
					s.Total()
				}
			}
		}(th)
	}
	wg.Wait()

	if s.Observed() != threads*perThread {
		t.Fatalf("observed %d, want %d", s.Observed(), threads*perThread)
	}
	sameProfile(t, s.Profile(), offline)
	sameProfile(t, s.Profile(), offline)

	// Node and slice modes can coexist across merges: more slice-mode
	// observations on top must still match the offline reference.
	s.ObserveContext(0, ctxA)
	s.ObserveContextNode(1, nodes[1])
	offline.Add(ctxA)
	offline.Add(ctxB)
	sameProfile(t, s.Profile(), offline)
}

// TestStreamingNodeModeIgnoresInvalid: nil nodes and negative thread
// ids are dropped, not crashed on.
func TestStreamingNodeModeIgnoresInvalid(t *testing.T) {
	p, ctxA, _, _ := tiny(t)
	dag := ccdag.New()
	var n *ccdag.Node
	for _, f := range ctxA {
		n = dag.Intern(n, f.Site, f.Fn)
	}
	s := NewStreaming(p)
	s.ObserveContextNode(0, nil)
	s.ObserveContextNode(-1, n)
	if s.Observed() != 0 || s.Total() != 0 {
		t.Fatalf("invalid observations counted: observed=%d total=%d", s.Observed(), s.Total())
	}
}

// TestStreamingDrainKeepsNodes verifies the steady-state contract:
// after a merge, counts continue accumulating correctly from zeroed
// (but retained) shard nodes.
func TestStreamingDrainKeepsNodes(t *testing.T) {
	p, ctxA, _, ctxC := tiny(t)
	s := NewStreaming(p)
	s.ObserveContext(0, ctxA)
	if s.Total() != 1 {
		t.Fatalf("total after first merge = %d", s.Total())
	}
	s.ObserveContext(0, ctxA)
	s.ObserveContext(0, ctxC)
	pr := s.Profile()
	if pr.Total() != 3 {
		t.Fatalf("total = %d, want 3", pr.Total())
	}
	want := New(p)
	want.Add(ctxA)
	want.Add(ctxA)
	want.Add(ctxC)
	sameProfile(t, pr, want)
}

// TestStreamingSnapshotIsolated proves Profile() returns a deep copy:
// mutating the snapshot or observing more contexts leaves the other
// side untouched.
func TestStreamingSnapshotIsolated(t *testing.T) {
	p, ctxA, ctxB, _ := tiny(t)
	s := NewStreaming(p)
	s.ObserveContext(0, ctxA)
	snap := s.Profile()
	s.ObserveContext(0, ctxB)
	if snap.Total() != 1 {
		t.Fatalf("snapshot total mutated to %d", snap.Total())
	}
	snap.Add(ctxB)
	snap.Add(ctxB)
	if got := s.Total(); got != 2 {
		t.Fatalf("live total %d, want 2 (snapshot Adds leaked)", got)
	}
}

// TestStreamingIgnoresInvalid: empty contexts and negative thread ids
// are dropped, not crashed on.
func TestStreamingIgnoresInvalid(t *testing.T) {
	p, ctxA, _, _ := tiny(t)
	s := NewStreaming(p)
	s.ObserveContext(0, nil)
	s.ObserveContext(-1, ctxA)
	if s.Observed() != 0 || s.Total() != 0 {
		t.Fatalf("invalid observations counted: observed=%d total=%d", s.Observed(), s.Total())
	}
}

// TestFoldedRoundTrip: WriteFolded → ParseFolded preserves inclusive
// and exclusive counts aggregated by function path (sites are lost by
// the format, by design).
func TestFoldedRoundTrip(t *testing.T) {
	wpr, _ := workload.ByName("456.hmmer")
	wpr.TotalCalls = 20_000
	w := workload.MustBuild(wpr)
	d := core.New(w.P, core.Options{})
	m := w.NewMachine(d, machine.Config{SampleEvery: 13})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	pr := New(w.P)
	for _, s := range rs.Samples {
		ctx, err := d.DecodeSample(s)
		if err != nil {
			t.Fatal(err)
		}
		pr.Add(ctx)
	}

	var buf bytes.Buffer
	if err := pr.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	folded := buf.String()
	back, err := ParseFolded(w.P, strings.NewReader(folded))
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != pr.Total() {
		t.Fatalf("round-trip total %d != %d", back.Total(), pr.Total())
	}
	// Inclusive counts by function-name path must survive exactly. The
	// reconstructed profile holds NoSite frames, so compare by name
	// path, not by (site,fn) path.
	if got, want := foldedInclusive(back), foldedInclusive(pr); len(got) != len(want) {
		t.Fatalf("fn-path count %d != %d", len(got), len(want))
	} else {
		for path, n := range want {
			if got[path] != n {
				t.Fatalf("path %q: inclusive %d != %d", path, got[path], n)
			}
		}
	}
	// And a second serialization is byte-identical (deterministic).
	var buf2 bytes.Buffer
	if err := back.WriteFolded(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != folded {
		t.Fatal("folded output not stable across a round-trip")
	}
}

// foldedInclusive aggregates inclusive counts by function-name path —
// the invariant the folded format preserves.
func foldedInclusive(pr *Profile) map[string]int64 {
	out := map[string]int64{}
	var rec func(n *Node, path string)
	rec = func(n *Node, path string) {
		name := pr.funcName(n.Fn)
		if path == "" {
			path = name
		} else {
			path = path + ";" + name
		}
		out[path] += n.Inclusive
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(pr.root, "")
	return out
}

func TestParseFoldedErrors(t *testing.T) {
	p, _, _, _ := tiny(t)
	for _, bad := range []string{
		"main;a",         // no count
		"main;a notanum", // bad count
		"main;a -3",      // negative count
		"main;ghost 4",   // unknown function
	} {
		if _, err := ParseFolded(p, strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFolded accepted %q", bad)
		}
	}
	// Blank lines and comments are fine.
	pr, err := ParseFolded(p, strings.NewReader("\n# comment\nmain;a 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Total() != 2 {
		t.Fatalf("total %d", pr.Total())
	}
}

// TestWritePprof checks the hand-encoded protobuf: gzipped, parseable,
// sample count equal to the number of distinct contexts and value sum
// equal to the profile total.
func TestWritePprof(t *testing.T) {
	p, ctxA, ctxB, ctxC := tiny(t)
	pr := New(p)
	for i := 0; i < 6; i++ {
		pr.Add(ctxA)
	}
	for i := 0; i < 3; i++ {
		pr.Add(ctxB)
	}
	pr.Add(ctxC)

	var buf bytes.Buffer
	if err := pr.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("pprof output not gzipped")
	}
	samples, total, err := PprofTotals(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if samples != pr.NumContexts() {
		t.Errorf("samples = %d, want %d", samples, pr.NumContexts())
	}
	if total != pr.Total() {
		t.Errorf("value sum = %d, want %d", total, pr.Total())
	}
}

func TestPprofTotalsRejectsGarbage(t *testing.T) {
	if _, _, err := PprofTotals(strings.NewReader("not a profile")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestStreamingHandler exercises the /debug/ccprof formats end to end.
func TestStreamingHandler(t *testing.T) {
	p, ctxA, ctxB, _ := tiny(t)
	s := NewStreaming(p)
	for i := 0; i < 4; i++ {
		s.ObserveContext(0, ctxA)
	}
	s.ObserveContext(1, ctxB)
	h := s.Handler()

	// Default: pprof protobuf.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ccprof", nil))
	samples, total, err := PprofTotals(rec.Body)
	if err != nil {
		t.Fatalf("default format: %v", err)
	}
	if samples != 2 || total != 5 {
		t.Errorf("pprof: samples=%d total=%d, want 2/5", samples, total)
	}

	// Folded.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ccprof?format=folded", nil))
	folded := rec.Body.String()
	if !strings.Contains(folded, "main;a 4") {
		t.Errorf("folded output missing main;a 4:\n%s", folded)
	}
	back, err := ParseFolded(p, strings.NewReader(folded))
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != 5 {
		t.Errorf("folded round-trip total %d", back.Total())
	}

	// Tree.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ccprof?format=tree", nil))
	if !strings.Contains(rec.Body.String(), "main") {
		t.Errorf("tree output: %q", rec.Body.String())
	}
}

// TestStreamingFromLiveRun attaches the profiler as the DACCE context
// observer on a real machine run and checks the live aggregate matches
// the offline profile built from the run's recorded samples.
func TestStreamingFromLiveRun(t *testing.T) {
	wpr, _ := workload.ByName("456.hmmer")
	wpr.TotalCalls = 30_000
	w := workload.MustBuild(wpr)
	s := NewStreaming(w.P)
	d := core.New(w.P, core.Options{ContextObserver: s})
	m := w.NewMachine(d, machine.Config{SampleEvery: 17})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Observed() == 0 {
		t.Fatal("streaming profiler observed nothing")
	}
	offline := New(w.P)
	for _, smp := range rs.Samples {
		ctx, err := d.DecodeSample(smp)
		if err != nil {
			t.Fatal(err)
		}
		offline.Add(ctx)
	}
	sameProfile(t, s.Profile(), offline)
}
