package pcc

import (
	"fmt"
	"testing"

	"dacce/internal/core"
	"dacce/internal/machine"
	"dacce/internal/prog"
	"dacce/internal/progtest"
)

func TestPCCDistinguishesContexts(t *testing.T) {
	fx, b := progtest.Fig1()
	p := b.MustBuild()
	fx.P = p
	sc := progtest.NewScript(p)
	sc.Root = []progtest.Call{
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
		progtest.By(fx.S("AC"), progtest.By(fx.S("CD"), progtest.By(fx.S("DE")))),
		progtest.By(fx.S("AB"), progtest.By(fx.S("BD"), progtest.By(fx.S("DE")))),
	}
	for _, f := range p.Funcs {
		f.Body = sc.Body()
	}
	s := New()
	m := machine.New(p, s, machine.Config{SampleEvery: 1})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Identical true contexts must produce identical values; distinct
	// ones should (probabilistically, but surely at this size) differ.
	byCtx := map[string]Value{}
	for _, sm := range rs.Samples {
		v := sm.Capture.(Value)
		key := core.ShadowContext(nil, sm.Shadow).String()
		if prev, ok := byCtx[key]; ok && prev != v {
			t.Errorf("context %s got two values %d and %d", key, prev, v)
		}
		byCtx[key] = v
		s.Observe(v, key)
	}
	seen := map[Value]bool{}
	for _, v := range byCtx {
		seen[v] = true
	}
	if len(seen) != len(byCtx) {
		t.Errorf("%d distinct contexts share %d values", len(byCtx), len(seen))
	}
	coll, distinct := s.Collisions()
	if coll != 0 {
		t.Errorf("collisions = %d", coll)
	}
	if distinct == 0 {
		t.Error("no values observed")
	}
}

func TestPCCObserveCollisions(t *testing.T) {
	s := New()
	s.Observe(1, "a")
	s.Observe(1, "a") // same context: no collision
	s.Observe(1, "b") // different context, same value: collision
	s.Observe(2, "c")
	coll, distinct := s.Collisions()
	if coll != 1 || distinct != 2 {
		t.Errorf("collisions/distinct = %d/%d, want 1/2", coll, distinct)
	}
}

func TestPCCValueRestoredOnReturn(t *testing.T) {
	b := prog.NewBuilder()
	mainF := b.Func("main")
	f := b.Func("f")
	sf := b.CallSite(mainF, f)
	var inMain []Value
	b.Body(mainF, func(x prog.Exec) {
		th := x.(*machine.Thread)
		grab := func() { inMain = append(inMain, th.State.(*tls).v) }
		grab()
		x.Call(sf, prog.NoFunc)
		grab()
		x.Call(sf, prog.NoFunc)
		grab()
	})
	b.Leaf(f, 1)
	p := b.MustBuild()
	m := machine.New(p, New(), machine.Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(inMain) != 3 || inMain[0] != inMain[1] || inMain[1] != inMain[2] {
		t.Errorf("value not restored across calls: %v", inMain)
	}
}

func TestPCCCollisionRateSmall(t *testing.T) {
	// Generate many distinct deep contexts and measure value collisions:
	// should be far below 1% at this scale (the paper's argument is not
	// that PCC collides often, but that its values cannot be decoded).
	b := prog.NewBuilder()
	mainF := b.Func("main")
	fs := make([]prog.FuncID, 12)
	sites := make([]prog.SiteID, 0)
	for i := range fs {
		fs[i] = b.Func(fmt.Sprintf("f%d", i))
	}
	// Chain with branching: each fi calls fi+1 via one of two sites.
	type pair struct{ a, b prog.SiteID }
	chain := make([]pair, len(fs)-1)
	for i := 0; i < len(fs)-1; i++ {
		chain[i] = pair{b.CallSite(fs[i], fs[i+1]), b.CallSite(fs[i], fs[i+1])}
		sites = append(sites, chain[i].a, chain[i].b)
	}
	entry := b.CallSite(mainF, fs[0])
	_ = sites
	b.Body(mainF, func(x prog.Exec) {
		for i := 0; i < 2000; i++ {
			x.Call(entry, prog.NoFunc)
		}
	})
	for i, f := range fs {
		i := i
		b.Body(f, func(x prog.Exec) {
			if i < len(chain) {
				c := chain[i]
				if x.Rand().Float64() < 0.5 {
					x.Call(c.a, prog.NoFunc)
				} else {
					x.Call(c.b, prog.NoFunc)
				}
			}
		})
	}
	p := b.MustBuild()
	s := New()
	m := machine.New(p, s, machine.Config{SampleEvery: 3, Seed: 5})
	rs, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range rs.Samples {
		s.Observe(sm.Capture.(Value), core.ShadowContext(nil, sm.Shadow).String())
	}
	coll, distinct := s.Collisions()
	if distinct < 100 {
		t.Fatalf("only %d distinct values; workload too small", distinct)
	}
	if float64(coll) > 0.01*float64(distinct) {
		t.Errorf("collision rate %d/%d too high", coll, distinct)
	}
}
