// Package pcc implements the probabilistic-calling-context baseline
// (Bond & McKinley, OOPSLA '07; paper §7): every call updates a
// per-thread hash V ← 3·V + cs and restores it on return. Capture is a
// single number — essentially free — but the mapping back to a call
// path is lost, which is the paper's argument for precise encodings.
// The package therefore exposes collision accounting instead of a
// decoder.
package pcc

import (
	"sync"

	"dacce/internal/machine"
	"dacce/internal/prog"
)

// Value is a probabilistic context identifier.
type Value uint64

// tls is the per-thread hash state.
type tls struct{ v Value }

// Scheme is the PCC baseline.
type Scheme struct {
	mu sync.Mutex
	// seen maps observed values to the number of *distinct* true
	// contexts that produced them, via a canonical string of the first
	// shadow stack observed; used by the collision report.
	seen map[Value]string
	// Collisions counts values observed with two different true
	// contexts.
	collisions int64
	distinct   int64
}

// New returns a PCC scheme.
func New() *Scheme { return &Scheme{seen: make(map[Value]string)} }

// Name implements machine.Scheme.
func (*Scheme) Name() string { return "pcc" }

// Install implements machine.Scheme.
func (s *Scheme) Install(m *machine.Machine) {
	st := &stub{}
	for i := 0; i < m.Program().NumSites(); i++ {
		m.SetStub(prog.SiteID(i), st)
	}
}

// ThreadStart implements machine.Scheme.
func (s *Scheme) ThreadStart(t, parent *machine.Thread) {
	state := &tls{}
	if parent != nil {
		state.v = parent.State.(*tls).v // inherit the spawn context hash
	}
	t.State = state
}

// ThreadExit implements machine.Scheme.
func (*Scheme) ThreadExit(t *machine.Thread) {}

// Capture implements machine.Scheme: just the value.
func (s *Scheme) Capture(t *machine.Thread) any {
	return t.State.(*tls).v
}

// Observe records a (value, true-context) pair for collision
// accounting; the tests and the evaluation harness feed it from machine
// samples.
func (s *Scheme) Observe(v Value, trueCtx string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.seen[v]; ok {
		if prev != trueCtx {
			s.collisions++
		}
		return
	}
	s.seen[v] = trueCtx
	s.distinct++
}

// Collisions returns how many observed values mapped to more than one
// true context, and how many distinct values were seen.
func (s *Scheme) Collisions() (collisions, distinct int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collisions, s.distinct
}

// Expected folds the hash update over a known call path: the value a
// capture must hold when exactly the calls through the given sites are
// open (spawn-inherited sites first). PCC has no decoder, so this
// forward fold is the only exact oracle a differential checker can
// hold a capture against.
func Expected(sites []prog.SiteID) Value {
	var v Value
	for _, s := range sites {
		v = 3*v + Value(s) + 1
	}
	return v
}

// stub updates the hash around every call; the cookie restores the
// previous value on return, so the value identifies the current
// context, not the call history. Tail calls get no restore — PCC is
// probabilistic, drift just adds noise.
type stub struct{}

func (st *stub) Prologue(t *machine.Thread, site *prog.Site, target prog.FuncID) (machine.Cookie, machine.Stub) {
	state := t.State.(*tls)
	t.C.InstrCost += machine.CostPCCHash
	prev := state.v
	// Real PCC hashes the callsite address, which is never zero; offset
	// the site id so site 0 perturbs the value too.
	state.v = 3*state.v + Value(site.ID) + 1
	return machine.Cookie{A: uint64(prev)}, st
}

func (st *stub) Epilogue(t *machine.Thread, site *prog.Site, target prog.FuncID, c machine.Cookie) {
	state := t.State.(*tls)
	state.v = Value(c.A)
}
